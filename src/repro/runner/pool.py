"""Trial-level fan-out for the experiment modules.

Every experiment sweep point is ``trials`` independent repetitions, each
fully determined by a seed tuple (the same ``[seed, t]`` sequence that
``trial_rngs`` feeds ``np.random.default_rng``).  :func:`map_trials`
runs a pure, module-level *trial function* over those seed tuples —
serially when ``jobs=1`` (no pool, no pickling, no overhead), or on a
shared :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs>1``
— and always returns the per-trial fragments **in seed order**, so the
merged table is identical regardless of worker completion order.

The trial function contract:

* it is a module-level callable ``fn(seed_tuple, params)`` (so worker
  processes can import it by reference);
* it derives *every* random draw from ``seed_tuple`` — no closure over
  generators, no module-level RNG state;
* ``params`` and the returned fragment are plain picklable data.

Observability rides the same rails: each trial runs under a fresh
:mod:`repro.obs.counters` registry (and, when the parent has a trace
sink installed, an in-memory span buffer), and the worker ships the
snapshot back with the fragment.  The parent merges counter payloads
into its active registry and the metrics collector — and re-emits
captured spans plus one synthetic ``trial`` span per trial — **in seed
order**, so ``--jobs N`` aggregates to exactly the totals of a serial
run.

Executors are created lazily, keyed by worker count, reused across
sweep points and experiments in the same process, and shut down at
interpreter exit.  A worker death (``BrokenProcessPool``) evicts the
poisoned executor, rebuilds it, and retries the batch once before
raising, so one crash never disables the pool for the rest of the
process.
"""

from __future__ import annotations

import atexit
import functools
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.runner.metrics import current_collector

__all__ = [
    "evict_executor",
    "get_executor",
    "map_trials",
    "shutdown_pools",
    "trial_seeds",
]

#: Live executors, keyed by worker count.
_EXECUTORS: dict[int, ProcessPoolExecutor] = {}


def trial_seeds(seed: int, trials: int) -> list[tuple[int, int]]:
    """The per-trial seed tuples matching ``trial_rngs(seed, trials)``."""
    return [(int(seed), t) for t in range(trials)]


def shutdown_pools() -> None:
    """Shut down every pooled executor (idempotent)."""
    while _EXECUTORS:
        _, executor = _EXECUTORS.popitem()
        executor.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def get_executor(jobs: int) -> ProcessPoolExecutor:
    """The persistent executor for *jobs* workers (created on first use).

    Executors are shared process-wide: the experiment runner and the
    solve service (:mod:`repro.service`) draw from the same cache, so a
    warm pool survives across callers and is shut down once at
    interpreter exit.  Callers that see a :class:`BrokenProcessPool`
    must call :func:`evict_executor` before retrying — the broken
    instance is poisoned permanently.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    executor = _EXECUTORS.get(jobs)
    if executor is None:
        executor = ProcessPoolExecutor(max_workers=jobs)
        _EXECUTORS[jobs] = executor
    return executor


def evict_executor(jobs: int) -> None:
    """Drop (and best-effort shut down) the cached executor for *jobs*.

    A :class:`BrokenProcessPool` poisons its executor permanently;
    leaving it in the cache would fail every later ``map_trials`` call in
    the process, so the broken instance must be evicted and replaced.
    """
    executor = _EXECUTORS.pop(jobs, None)
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)


def _timed_call(
    trial_fn,
    seed_tuple,
    params,
    capture_spans: bool = False,
    label: str | None = None,
):
    """Worker-side wrapper: run one trial under a fresh obs capture.

    Returns ``(fragment, seconds, counters, spans)`` where *counters* is
    the trial's counter snapshot (``None`` when the trial emitted none)
    and *spans* the captured span records plus one synthetic ``trial``
    span whose duration is exactly *seconds* — the same number the
    metrics collector records, so a trace and its manifest always agree
    on per-trial time (``None`` unless *capture_spans*).
    """
    sink = obs_trace.MemorySink() if capture_spans else None
    t0 = time.time()
    start = time.perf_counter()
    with obs_counters.counting() as registry:
        if sink is not None:
            with obs_trace.tracing(sink):
                fragment = trial_fn(seed_tuple, params)
        else:
            fragment = trial_fn(seed_tuple, params)
    seconds = time.perf_counter() - start
    counters = registry.snapshot() or None
    spans = None
    if sink is not None:
        sink.emit(
            {
                "name": "trial",
                "t0": t0,
                "dur": seconds,
                "depth": 0,
                "pid": os.getpid(),
                "attrs": {
                    "label": label,
                    "seed": [int(part) for part in seed_tuple],
                },
            }
        )
        spans = sink.records
    return fragment, seconds, counters, spans


def map_trials(
    trial_fn: Callable,
    seeds: Iterable[Sequence[int]],
    params: dict | None = None,
    *,
    jobs: int = 1,
    label: str | None = None,
) -> list:
    """Run ``trial_fn(seed_tuple, params)`` for every seed tuple.

    Returns the fragments in the order of *seeds*, regardless of which
    worker finishes first.  ``jobs=1`` bypasses the pool entirely and
    runs in-process; ``jobs`` below 1 is an error.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    seed_list = [tuple(int(part) for part in seed) for seed in seeds]
    collector = current_collector()
    registry = obs_counters.active()
    sink = obs_trace.active_sink()

    def merge(item) -> object:
        """Fold one trial's payloads into the parent-side consumers."""
        fragment, seconds, counters, spans = item
        if collector is not None:
            collector.record_trial(seconds, label=label, counters=counters)
        if registry is not None and counters:
            registry.merge(counters)
        if sink is not None and spans:
            for record in spans:
                sink.emit(record)
        return fragment

    if jobs == 1 or len(seed_list) <= 1:
        if collector is not None:
            collector.record_pool(1)
        return [
            merge(
                _timed_call(
                    trial_fn,
                    seed_tuple,
                    params,
                    capture_spans=sink is not None,
                    label=label,
                )
            )
            for seed_tuple in seed_list
        ]

    workers = min(jobs, len(seed_list))
    if collector is not None:
        collector.record_pool(workers)
    call = functools.partial(
        _timed_call,
        trial_fn,
        params=params,
        capture_spans=sink is not None,
        label=label,
    )
    # A worker dying mid-batch (OOM-kill, segfault, os._exit in the trial
    # fn) breaks the whole pool.  Evict the poisoned executor, rebuild it,
    # and retry the batch once from scratch — trial fns are pure functions
    # of (seed_tuple, params), so a rerun is safe.  A second failure is a
    # deterministic crash in the trial fn itself: surface it clearly.
    for attempt in (1, 2):
        results = []
        try:
            # executor.map preserves input order: the deterministic merge.
            for item in get_executor(workers).map(call, seed_list):
                results.append(item)
            break
        except BrokenProcessPool as exc:
            evict_executor(workers)
            if attempt == 2:
                raise RuntimeError(
                    f"map_trials({getattr(trial_fn, '__name__', trial_fn)!r}) "
                    f"lost a worker process twice in a row; the trial "
                    f"function likely crashes the interpreter "
                    f"(exit/abort/OOM) deterministically"
                ) from exc
    return [merge(item) for item in results]
