"""Run-time instrumentation for the experiment runner.

A :class:`RunMetrics` collector travels with one ``run_experiment``
invocation and accumulates per-trial wall times, the worker count used
for each fan-out, and the cache outcome.  Experiments do not thread the
collector through their signatures: :func:`repro.runner.pool.map_trials`
looks up the *active* collector (installed with :func:`collecting`) and
records into it, so the same experiment code is instrumented when driven
by the runner and free of overhead when called directly.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

__all__ = ["RunMetrics", "collecting", "current_collector"]


@dataclass
class RunMetrics:
    """Counters for one experiment run.

    Attributes
    ----------
    experiment:
        Experiment name (``fig_r1``).
    jobs:
        Worker count requested for the run (1 = in-process serial).
    cache:
        Cache outcome: ``"hit"``, ``"miss"``, or ``"off"``.
    wall_seconds:
        End-to-end wall time of the run (including cache I/O).
    trial_seconds:
        ``(label, seconds)`` per executed trial, in merge order.
    pool_jobs:
        Worker counts actually used by each ``map_trials`` fan-out.
    """

    experiment: str
    jobs: int = 1
    cache: str = "off"
    wall_seconds: float = 0.0
    trial_seconds: list[tuple[str, float]] = field(default_factory=list)
    pool_jobs: list[int] = field(default_factory=list)

    def record_trial(self, seconds: float, label: str | None = None) -> None:
        """Record one trial's in-worker wall time."""
        self.trial_seconds.append((label or self.experiment, seconds))

    def record_pool(self, jobs: int) -> None:
        """Record the worker count one fan-out actually used."""
        self.pool_jobs.append(jobs)

    @property
    def trials(self) -> int:
        """Number of trials executed (0 on a cache hit)."""
        return len(self.trial_seconds)

    @property
    def trial_total_seconds(self) -> float:
        """Summed in-worker trial time (CPU-side work, all workers)."""
        return sum(dt for _, dt in self.trial_seconds)

    @property
    def max_workers(self) -> int:
        """The widest fan-out used (1 when everything ran serially)."""
        return max(self.pool_jobs, default=1)

    def summary_note(self) -> str:
        """One-line summary, appended to ``ExperimentTable.notes``."""
        return (
            f"runner: jobs={self.jobs} cache={self.cache} "
            f"trials={self.trials} wall={self.wall_seconds:.3f}s"
        )

    def report(self) -> str:
        """The multi-line ``--timings`` report."""
        lines = [
            f"-- timings: {self.experiment} --",
            f"jobs requested   : {self.jobs}",
            f"workers used     : {self.max_workers}",
            f"cache            : {self.cache}",
            f"wall time        : {self.wall_seconds:.3f} s",
            f"trials executed  : {self.trials}",
        ]
        if self.trial_seconds:
            total = self.trial_total_seconds
            times = sorted(dt for _, dt in self.trial_seconds)
            lines += [
                f"trial time (sum) : {total:.3f} s",
                f"trial time (mean): {total / len(times):.4f} s",
                f"trial time (max) : {times[-1]:.4f} s",
            ]
            if self.wall_seconds > 0:
                lines.append(
                    f"parallel speedup : {total / self.wall_seconds:.2f}x "
                    "(trial-sum / wall)"
                )
        return "\n".join(lines)


#: The collector ``map_trials`` records into, when one is installed.
_ACTIVE: RunMetrics | None = None


def current_collector() -> RunMetrics | None:
    """The collector installed by the innermost :func:`collecting`."""
    return _ACTIVE


@contextlib.contextmanager
def collecting(metrics: RunMetrics):
    """Install *metrics* as the active collector for the ``with`` body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = metrics
    try:
        yield metrics
    finally:
        _ACTIVE = previous
