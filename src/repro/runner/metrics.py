"""Run-time instrumentation for the experiment runner.

A :class:`RunMetrics` collector travels with one ``run_experiment``
invocation and accumulates per-trial wall times, per-trial solver
counters (merged from the :mod:`repro.obs` payloads the pool ships
back), the worker count used for each fan-out, and the cache outcome.
Experiments do not thread the collector through their signatures:
:func:`repro.runner.pool.map_trials` looks up the *active* collector
(installed with :func:`collecting`) and records into it, so the same
experiment code is instrumented when driven by the runner and free of
overhead when called directly.

Collectors nest: :func:`collecting` keeps a stack and ``map_trials``
records into the **innermost** collector only, so an experiment driven
inside another instrumented scope never double-records its trials.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

__all__ = ["RunMetrics", "collecting", "current_collector"]


@dataclass
class RunMetrics:
    """Counters for one experiment run.

    Attributes
    ----------
    experiment:
        Experiment name (``fig_r1``).
    jobs:
        Worker count requested for the run (1 = in-process serial).
    cache:
        Cache outcome: ``"hit"``, ``"miss"``, or ``"off"``.
    wall_seconds:
        End-to-end wall time of the run (including cache I/O); always
        strictly positive, cache hits included.
    trial_seconds:
        ``(label, seconds)`` per executed trial, in merge order.
    pool_jobs:
        Worker counts actually used by each ``map_trials`` fan-out.
    counters:
        Aggregated solver counters (:mod:`repro.obs.counters` payloads
        merged in seed order; identical totals for any ``jobs``).
    manifest:
        Path of the run manifest written for this run, when one was.
    """

    experiment: str
    jobs: int = 1
    cache: str = "off"
    wall_seconds: float = 0.0
    trial_seconds: list[tuple[str, float]] = field(default_factory=list)
    pool_jobs: list[int] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    manifest: str | None = None

    def record_trial(
        self,
        seconds: float,
        label: str | None = None,
        counters: dict | None = None,
    ) -> None:
        """Record one trial's in-worker wall time (+ counter payload)."""
        self.trial_seconds.append((label or self.experiment, seconds))
        if counters:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value

    def record_pool(self, jobs: int) -> None:
        """Record the worker count one fan-out actually used."""
        self.pool_jobs.append(jobs)

    @property
    def trials(self) -> int:
        """Number of trials executed (0 on a cache hit)."""
        return len(self.trial_seconds)

    @property
    def trial_total_seconds(self) -> float:
        """Summed in-worker trial time (CPU-side work, all workers)."""
        return sum(dt for _, dt in self.trial_seconds)

    @property
    def max_workers(self) -> int:
        """The widest fan-out used (1 when everything ran serially)."""
        return max(self.pool_jobs, default=1)

    def summary_note(self) -> str:
        """One-line summary, appended to ``ExperimentTable.notes``."""
        return (
            f"runner: jobs={self.jobs} cache={self.cache} "
            f"trials={self.trials} wall={self.wall_seconds:.3f}s"
        )

    def summary_line(self) -> str:
        """The always-printed CLI one-liner for this run."""
        return (
            f"{self.experiment}: cache={self.cache} trials={self.trials} "
            f"wall={self.wall_seconds:.3f}s jobs={self.jobs}"
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (the ``--log-json`` record)."""
        return {
            "experiment": self.experiment,
            "cache": self.cache,
            "jobs": self.jobs,
            "trials": self.trials,
            "wall_seconds": self.wall_seconds,
            "trial_total_seconds": self.trial_total_seconds,
            "workers": self.max_workers,
            "counters": dict(self.counters),
            "manifest": self.manifest,
        }

    def report(self) -> str:
        """The multi-line ``--timings`` report."""
        lines = [
            f"-- timings: {self.experiment} --",
            f"jobs requested   : {self.jobs}",
            f"workers used     : {self.max_workers}",
            f"cache            : {self.cache}",
            f"wall time        : {self.wall_seconds:.3f} s",
            f"trials executed  : {self.trials}",
        ]
        if self.trial_seconds:
            total = self.trial_total_seconds
            times = sorted(dt for _, dt in self.trial_seconds)
            lines += [
                f"trial time (sum) : {total:.3f} s",
                f"trial time (mean): {total / len(times):.4f} s",
                f"trial time (max) : {times[-1]:.4f} s",
            ]
            if self.wall_seconds > 0:
                lines.append(
                    f"parallel speedup : {total / self.wall_seconds:.2f}x "
                    "(trial-sum / wall)"
                )
        if self.manifest:
            lines.append(f"manifest         : {self.manifest}")
        return "\n".join(lines)


#: Stack of installed collectors; ``map_trials`` records into the top.
_STACK: list[RunMetrics] = []


def current_collector() -> RunMetrics | None:
    """The collector installed by the innermost :func:`collecting`."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def collecting(metrics: RunMetrics):
    """Install *metrics* as the active collector for the ``with`` body.

    Contexts nest; only the innermost collector records, so wrapping an
    already-instrumented run in another ``collecting`` scope does not
    double-record its trials.
    """
    _STACK.append(metrics)
    try:
        yield metrics
    finally:
        _STACK.pop()
