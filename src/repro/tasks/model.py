"""Frame-based and periodic task models.

Design notes
------------
* Tasks are frozen dataclasses: an experiment can hash, sort, and stick
  them in sets without aliasing surprises.
* Task sets are thin immutable sequences with the aggregate quantities the
  algorithms keep asking for (total cycles, total penalty, utilisation)
  precomputed, plus subset selection by index set — the natural currency
  of the rejection algorithms.
* Hyper-periods are computed exactly over :class:`fractions.Fraction`
  (the LCM of rationals), so simulators can iterate an integral number of
  periods without drift.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro._validation import require_nonnegative, require_positive


@dataclass(frozen=True, order=True)
class FrameTask:
    """A frame-based task: ``cycles`` of work due at the common deadline.

    Attributes
    ----------
    name:
        Unique identifier within a task set.
    cycles:
        Worst-case execution cycles ``ci`` (> 0).
    penalty:
        Rejection penalty ``ρi`` (>= 0): the cost incurred when the task
        is dropped.  Zero-penalty tasks are legal (best-effort work).
    """

    name: str
    cycles: float
    penalty: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        require_positive("cycles", self.cycles)
        require_nonnegative("penalty", self.penalty)

    @property
    def penalty_density(self) -> float:
        """``ρi / ci`` — penalty bought per cycle saved by rejecting."""
        return self.penalty / self.cycles


@dataclass(frozen=True, order=True)
class PeriodicTask:
    """A periodic task ``(period, wcec)`` with implicit deadline.

    Attributes
    ----------
    name:
        Unique identifier within a task set.
    period:
        Period ``pi`` (> 0); also the relative deadline.
    wcec:
        Worst-case execution cycles ``ci`` per job (> 0).
    penalty:
        Rejection penalty ``ρi`` (>= 0) for dropping the *whole task* —
        per the paper's partition model a task is accepted or rejected as
        a unit, never job-by-job.
    arrival:
        Initial arrival (phase) ``ai`` (>= 0).
    """

    name: str
    period: float
    wcec: float
    penalty: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        require_positive("period", self.period)
        require_positive("wcec", self.wcec)
        require_nonnegative("penalty", self.penalty)
        require_nonnegative("arrival", self.arrival)

    @property
    def utilization(self) -> float:
        """Cycle utilisation ``ci / pi`` (cycles per time unit)."""
        return self.wcec / self.period

    @property
    def penalty_density(self) -> float:
        """``ρi / (ci / pi)`` — penalty per unit of utilisation shed."""
        return self.penalty / self.utilization


def hyper_period(periods: Iterable[float]) -> Fraction:
    """Exact LCM of the (rational) *periods*.

    Periods are converted with ``Fraction(value).limit_denominator(10**6)``
    when they are floats, so callers who care about exactness should pass
    ``Fraction``/``int`` periods directly.
    """
    result = Fraction(0)
    count = 0
    for p in periods:
        count += 1
        frac = p if isinstance(p, Fraction) else Fraction(p).limit_denominator(10**6)
        if frac <= 0:
            raise ValueError(f"periods must be positive, got {p!r}")
        if result == 0:
            result = frac
        else:
            result = Fraction(
                math.lcm(result.numerator, frac.numerator),
                math.gcd(result.denominator, frac.denominator),
            )
    if count == 0:
        raise ValueError("hyper_period of an empty collection is undefined")
    return result


class _TaskSetBase(Sequence):
    """Shared machinery of the two task-set containers."""

    _tasks: tuple

    def __init__(self, tasks: Iterable) -> None:
        items = tuple(tasks)
        names = [t.name for t in items]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task names: {duplicates}")
        self._tasks = items

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator:
        return iter(self._tasks)

    def __getitem__(self, index):
        picked = self._tasks[index]
        if isinstance(index, slice):
            return type(self)(picked)
        return picked

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({list(self._tasks)!r})"

    def by_name(self, name: str):
        """Look a task up by name (raises KeyError when absent)."""
        for task in self._tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def subset(self, indices: Iterable[int]):
        """A new task set containing the tasks at *indices* (order kept)."""
        index_set = sorted(set(indices))
        for i in index_set:
            if not 0 <= i < len(self._tasks):
                raise IndexError(f"task index {i} out of range")
        return type(self)(self._tasks[i] for i in index_set)

    def complement(self, indices: Iterable[int]):
        """The tasks *not* at *indices*."""
        keep = set(indices)
        return type(self)(
            task for i, task in enumerate(self._tasks) if i not in keep
        )

    @property
    def total_penalty(self) -> float:
        """Sum of all rejection penalties."""
        return sum(t.penalty for t in self._tasks)


class FrameTaskSet(_TaskSetBase):
    """An immutable collection of :class:`FrameTask`."""

    @property
    def total_cycles(self) -> float:
        """Total worst-case execution cycles."""
        return sum(t.cycles for t in self._tasks)

    def sorted_by(self, key, *, reverse: bool = False) -> "FrameTaskSet":
        """A new set sorted by *key* (e.g. ``lambda t: t.penalty_density``)."""
        return FrameTaskSet(sorted(self._tasks, key=key, reverse=reverse))


class PeriodicTaskSet(_TaskSetBase):
    """An immutable collection of :class:`PeriodicTask`."""

    @property
    def total_utilization(self) -> float:
        """Sum of task utilisations ``Σ ci / pi``."""
        return sum(t.utilization for t in self._tasks)

    @property
    def hyper_period(self) -> Fraction:
        """Exact hyper-period of the task periods."""
        return hyper_period(t.period for t in self._tasks)

    def sorted_by(self, key, *, reverse: bool = False) -> "PeriodicTaskSet":
        """A new set sorted by *key*."""
        return PeriodicTaskSet(sorted(self._tasks, key=key, reverse=reverse))
