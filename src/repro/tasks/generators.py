"""Seeded synthetic workload generators.

The evaluation methodology (companion text, Section IV) uses synthetic
task sets with the power function ``β0 + β1 s³``; the generators here
produce the corresponding rejection instances:

* execution cycles drawn uniformly (optionally integer-valued, which the
  exact DPs require), then rescaled so the *system load*
  ``η = Σci / (s_max · D)`` hits a requested value — ``η > 1`` is the
  overload regime where rejection is mandatory;
* penalties drawn from one of four models (mirroring the companion text's
  proportional/inverse settings for the heterogeneous-PE experiments):

  - ``uniform``       — ρ ~ U[lo, hi] · scale, independent of the task;
  - ``proportional``  — ρ ∝ cycles (big tasks hurt more to drop);
  - ``inverse``       — ρ ∝ 1 / cycles (big tasks are cheap to drop —
    the adversarial case for naive admission control);
  - ``energy``        — ρ = scale × (energy of running the task alone at
    ``ci / D``), tying the penalty scale to the energy scale so the
    rejection trade-off is genuinely two-sided.

All draws go through a caller-supplied :class:`numpy.random.Generator`,
so every experiment is reproducible from its seed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import require_positive
from repro.tasks.model import FrameTask, FrameTaskSet, PeriodicTask, PeriodicTaskSet

#: The penalty models accepted by the generators.
PENALTY_MODELS = ("uniform", "proportional", "inverse", "energy")

#: Default period menu for periodic instances (harmonic-ish, small LCM).
DEFAULT_PERIODS = (10.0, 20.0, 25.0, 50.0, 100.0)


def _draw_penalties(
    rng: np.random.Generator,
    cycles: np.ndarray,
    *,
    model: str,
    scale: float,
    deadline: float,
    alpha: float,
    s_ref: float | None = None,
    noise: float = 0.25,
) -> np.ndarray:
    """Penalty vector for *cycles* under the requested *model*.

    ``s_ref`` is the reference speed of the ``energy`` model: the
    marginal energy of carrying one more cycle at system speed ``s`` is
    ``Θ(s**(alpha-1))`` per cycle, so pricing penalties at the *system*
    operating point (rather than each task's solo speed) keeps the
    accept/reject trade-off genuinely two-sided across load levels.
    """
    if model not in PENALTY_MODELS:
        raise ValueError(f"unknown penalty model {model!r}; pick from {PENALTY_MODELS}")
    require_positive("scale", scale)
    jitter = rng.uniform(1.0 - noise, 1.0 + noise, size=cycles.shape)
    if model == "uniform":
        base = np.full_like(cycles, float(np.mean(cycles)) / deadline)
    elif model == "proportional":
        base = cycles / deadline
    elif model == "inverse":
        base = (float(np.mean(cycles)) ** 2 / cycles) / deadline
    else:  # "energy": per-cycle energy at the system reference speed
        if s_ref is None:
            s_ref = float(np.sum(cycles)) / deadline
        base = cycles * s_ref ** (alpha - 1.0)
    return scale * base * jitter


def frame_instance(
    rng: np.random.Generator,
    *,
    n_tasks: int,
    load: float,
    deadline: float = 1.0,
    s_max: float = 1.0,
    penalty_model: str = "energy",
    penalty_scale: float = 1.0,
    alpha: float = 3.0,
    cycle_spread: float = 4.0,
    cycle_distribution: str = "uniform",
    integer_cycles: int | None = None,
) -> FrameTaskSet:
    """A random frame-based rejection instance.

    Parameters
    ----------
    rng:
        Seeded NumPy generator.
    n_tasks:
        Number of tasks ``n``.
    load:
        System load ``η = Σci / (s_max · D)``; cycles are rescaled so the
        instance hits it exactly (up to integer rounding).
    deadline, s_max:
        Frame deadline and processor speed cap.
    penalty_model, penalty_scale:
        See the module docstring.
    alpha:
        Power-function exponent used by the ``energy`` penalty model.
    cycle_spread:
        Max/min ratio of the raw uniform cycle draw (≥ 1), or the
        log-space sigma proxy for the lognormal draw.
    cycle_distribution:
        ``"uniform"`` (default) or ``"lognormal"`` — heavier-tailed task
        sizes, the common model for job mixes with rare giants.
    integer_cycles:
        When given, cycles are quantised to integers with total
        ``round(load · s_max · D · integer_cycles)`` on a grid of
        ``integer_cycles`` cycles per (s_max·D); required by the exact
        DP algorithms.  The returned cycles are the *integer* values, so
        pair the instance with ``deadline · integer_cycles`` worth of
        capacity — use :func:`scaled_capacity` to get it right.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks!r}")
    require_positive("load", load)
    require_positive("deadline", deadline)
    require_positive("s_max", s_max)
    if cycle_spread < 1.0:
        raise ValueError(f"cycle_spread must be >= 1, got {cycle_spread!r}")

    if cycle_distribution == "uniform":
        raw = rng.uniform(1.0, cycle_spread, size=n_tasks)
    elif cycle_distribution == "lognormal":
        sigma = max(np.log(cycle_spread) / 2.0, 1e-6)
        raw = rng.lognormal(mean=0.0, sigma=sigma, size=n_tasks)
    else:
        raise ValueError(
            f"unknown cycle_distribution {cycle_distribution!r}; "
            "pick 'uniform' or 'lognormal'"
        )
    target_total = load * s_max * deadline
    cycles = raw * (target_total / raw.sum())

    if integer_cycles is not None:
        if integer_cycles < n_tasks:
            raise ValueError(
                "integer_cycles grid too coarse: need at least one cycle "
                f"per task ({integer_cycles} < {n_tasks})"
            )
        grid = cycles * integer_cycles / (s_max * deadline)
        cycles = np.maximum(np.rint(grid), 1.0)

    penalties = _draw_penalties(
        rng,
        cycles,
        model=penalty_model,
        scale=penalty_scale,
        deadline=(
            deadline if integer_cycles is None else float(integer_cycles) / s_max
        ),
        alpha=alpha,
        s_ref=min(load, 1.0) * s_max,
    )
    tasks = [
        FrameTask(name=f"t{i}", cycles=float(c), penalty=float(p))
        for i, (c, p) in enumerate(zip(cycles, penalties))
    ]
    return FrameTaskSet(tasks)


def scaled_capacity(
    *, deadline: float, s_max: float, integer_cycles: int
) -> tuple[float, float]:
    """(deadline', s_max') matching a ``frame_instance(integer_cycles=...)``.

    The integer grid puts ``integer_cycles`` cycles into ``s_max · D``
    capacity; keeping ``s_max`` and stretching the deadline preserves the
    load: ``deadline' = integer_cycles / s_max``.
    """
    require_positive("deadline", deadline)
    require_positive("s_max", s_max)
    if integer_cycles < 1:
        raise ValueError(f"integer_cycles must be >= 1, got {integer_cycles!r}")
    return (integer_cycles / s_max, s_max)


def uunifast(
    rng: np.random.Generator, n_tasks: int, total_utilization: float
) -> list[float]:
    """UUniFast (Bini & Buttazzo): n utilisations summing to the target.

    Produces an unbiased uniform sample of the utilisation simplex, the
    standard generator for schedulability experiments.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks!r}")
    require_positive("total_utilization", total_utilization)
    utilizations: list[float] = []
    remaining = total_utilization
    for i in range(n_tasks - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n_tasks - i - 1))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def periodic_instance(
    rng: np.random.Generator,
    *,
    n_tasks: int,
    total_utilization: float,
    periods: Sequence[float] = DEFAULT_PERIODS,
    penalty_model: str = "energy",
    penalty_scale: float = 1.0,
    alpha: float = 3.0,
) -> PeriodicTaskSet:
    """A random periodic rejection instance via UUniFast.

    ``total_utilization`` may exceed the schedulable bound (1.0 at
    ``s_max = 1``): that is the overload regime the paper targets.
    """
    if not periods:
        raise ValueError("periods menu must be non-empty")
    utils = uunifast(rng, n_tasks, total_utilization)
    chosen = rng.choice(np.asarray(periods, dtype=float), size=n_tasks)
    utils_arr = np.asarray(utils)
    # Penalties must live on the same scale as the cost they trade
    # against — the energy over one hyper-period — so the per-unit-time
    # draw is multiplied by the hyper-period length.
    from repro.tasks.model import hyper_period

    length = float(hyper_period(float(p) for p in chosen))
    penalties = length * _draw_penalties(
        rng,
        utils_arr,  # utilisation plays the role of cycles
        model=penalty_model,
        scale=penalty_scale,
        deadline=1.0,
        alpha=alpha,
        s_ref=min(total_utilization, 1.0),
    )
    tasks = [
        PeriodicTask(
            name=f"t{i}",
            period=float(p),
            wcec=float(u * p),
            penalty=float(rho),
        )
        for i, (u, p, rho) in enumerate(zip(utils, chosen, penalties))
    ]
    return PeriodicTaskSet(tasks)
