"""Task models and synthetic workload generators.

Two task models, matching the system model of the companion DATE'07 text:

* **Frame-based** tasks (:class:`FrameTask`): all arrive at time 0 and
  share a common deadline ``D`` — the model the rejection problem is
  first stated in.
* **Periodic** tasks (:class:`PeriodicTask`): task ``τi`` releases a job
  every ``pi`` time units with relative deadline ``pi``; the workload
  measure becomes the utilisation ``ci / pi`` and the horizon the
  hyper-period.

Both carry a *rejection penalty* ``ρi`` — the cost the system pays if the
task is dropped instead of executed.
"""

from repro.tasks.model import (
    FrameTask,
    FrameTaskSet,
    PeriodicTask,
    PeriodicTaskSet,
    hyper_period,
)

#: Names served lazily from :mod:`repro.tasks.generators`, which needs
#: NumPy; deferring keeps the task *models* importable without it.
_GENERATOR_EXPORTS = frozenset(
    {"PENALTY_MODELS", "frame_instance", "periodic_instance", "uunifast"}
)


def __getattr__(name: str):
    if name in _GENERATOR_EXPORTS:
        from repro.tasks import generators

        return getattr(generators, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FrameTask",
    "FrameTaskSet",
    "PeriodicTask",
    "PeriodicTaskSet",
    "hyper_period",
    "frame_instance",
    "periodic_instance",
    "uunifast",
    "PENALTY_MODELS",
]
