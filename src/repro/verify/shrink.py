"""Greedy delta-debugging of failing instances.

A fuzzer-found counterexample routinely carries five irrelevant tasks
and twelve noise digits.  :func:`shrink_problem` minimises it before it
is reported: drop tasks one at a time while the failure predicate keeps
holding, then simplify the surviving numbers (round cycles/penalties to
fewer digits, zero out penalties).  The result is the instance that is
written as the reproducer JSON, so the artefact a human opens is close
to minimal.

The predicate is arbitrary (typically ``lambda p: bool(crosscheck(p))``)
and is treated as expensive: the loop is plain greedy descent, not a
full ddmin partition search — task counts here are single digits, and
one pass to a fixed point is enough.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.rejection import MultiprocRejectionProblem, RejectionProblem
from repro.hetero.assign import HeteroRejectionProblem
from repro.tasks import FrameTask, FrameTaskSet

#: Hard ceiling on predicate evaluations per shrink.
MAX_PROBES = 400

#: Rounding ladder tried on every cycles/penalty value (digits).
_ROUND_LADDER = (0, 1, 3)


def _holds(predicate: Callable[[object], bool], candidate: object, budget: list[int]) -> bool:
    """Evaluate *predicate*, charging *budget*; exhausted budget → False."""
    if budget[0] <= 0:
        return False
    budget[0] -= 1
    try:
        return bool(predicate(candidate))
    except Exception:  # noqa: BLE001 - a crash is also "still failing"
        return True


def _with_tasks(problem, tasks: list[FrameTask]):
    if isinstance(problem, HeteroRejectionProblem):
        return HeteroRejectionProblem(
            tasks=FrameTaskSet(tasks), platform=problem.platform, mk=problem.mk
        )
    if isinstance(problem, MultiprocRejectionProblem):
        return MultiprocRejectionProblem(
            tasks=FrameTaskSet(tasks), energy_fn=problem.energy_fn, m=problem.m
        )
    return RejectionProblem(tasks=FrameTaskSet(tasks), energy_fn=problem.energy_fn)


def _shrink_tasks(problem, predicate, budget: list[int]):
    """Drop tasks one at a time to a fixed point."""
    tasks = list(problem.tasks)
    changed = True
    while changed and len(tasks) > 1:
        changed = False
        for i in range(len(tasks)):
            candidate = _with_tasks(problem, tasks[:i] + tasks[i + 1 :])
            if _holds(predicate, candidate, budget):
                tasks.pop(i)
                problem = candidate
                changed = True
                break
    return problem


def _shrink_values(problem, predicate, budget: list[int]):
    """Round cycles/penalties and zero penalties where the failure survives."""
    tasks = list(problem.tasks)
    for i, task in enumerate(tasks):
        for field in ("penalty", "cycles"):
            value = getattr(tasks[i], field)
            candidates = [round(value, d) for d in _ROUND_LADDER]
            if field == "penalty":
                candidates.insert(0, 0.0)
            for simpler in candidates:
                if simpler == value or (field == "cycles" and simpler <= 0.0):
                    continue
                trial = tasks[i].__class__(
                    name=tasks[i].name,
                    cycles=simpler if field == "cycles" else tasks[i].cycles,
                    penalty=simpler if field == "penalty" else tasks[i].penalty,
                )
                candidate_tasks = tasks[:i] + [trial] + tasks[i + 1 :]
                try:
                    candidate = _with_tasks(problem, candidate_tasks)
                except ValueError:
                    continue
                if _holds(predicate, candidate, budget):
                    tasks = candidate_tasks
                    problem = candidate
                    break
    return problem


def shrink_problem(
    problem: RejectionProblem,
    predicate: Callable[[RejectionProblem], bool],
    *,
    max_probes: int = MAX_PROBES,
) -> RejectionProblem:
    """Minimise a failing uniprocessor instance.

    *predicate* must return True while the instance still fails.  The
    returned instance satisfies the predicate (it is only ever replaced
    by candidates that do); when the budget runs out the best-so-far is
    returned.
    """
    budget = [max_probes]
    problem = _shrink_tasks(problem, predicate, budget)
    return _shrink_values(problem, predicate, budget)


def shrink_multiproc(
    problem: MultiprocRejectionProblem,
    predicate: Callable[[MultiprocRejectionProblem], bool],
    *,
    max_probes: int = MAX_PROBES,
) -> MultiprocRejectionProblem:
    """Minimise a failing multiprocessor instance (tasks, values, then m)."""
    budget = [max_probes]
    problem = _shrink_tasks(problem, predicate, budget)
    problem = _shrink_values(problem, predicate, budget)
    while problem.m > 1:
        candidate = MultiprocRejectionProblem(
            tasks=problem.tasks, energy_fn=problem.energy_fn, m=problem.m - 1
        )
        if not _holds(predicate, candidate, budget):
            break
        problem = candidate
    return problem


def shrink_hetero(
    problem: HeteroRejectionProblem,
    predicate: Callable[[HeteroRejectionProblem], bool],
    *,
    max_probes: int = MAX_PROBES,
) -> HeteroRejectionProblem:
    """Minimise a failing heterogeneous instance (tasks, values, then mk).

    The platform itself is kept as-is — the core-type mix is usually the
    point of the counterexample — but an (m,k) contract that is not
    load-bearing is stripped so the reproducer stays minimal.
    """
    budget = [max_probes]
    problem = _shrink_tasks(problem, predicate, budget)
    problem = _shrink_values(problem, predicate, budget)
    if problem.mk is not None:
        candidate = HeteroRejectionProblem(
            tasks=problem.tasks, platform=problem.platform, mk=None
        )
        if _holds(predicate, candidate, budget):
            problem = candidate
    return problem
