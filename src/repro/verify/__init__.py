"""Differential verification harness for the REJECT-MIN solvers.

Every headline number of the reproduction is a *normalised* ratio
(heuristic cost over the fractional lower bound), so a silent solver bug
corrupts every figure at once.  This package is the always-on defence:

* :mod:`repro.verify.strategies` — adversarial random-instance
  generators (boundary workloads, zero/huge penalties, overloaded and
  trivially-feasible regimes, discrete level sets with leakage and
  positive sleep overheads, multiprocessor instances), shared between
  the fuzzing harness and the hypothesis test suite;
* :mod:`repro.verify.invariants` — per-solution checkers (feasibility,
  cost arithmetic, ``plan(W).energy == energy(W)`` consistency, the
  lower/upper sandwich, the FPTAS additive bound) plus an empirical
  convexity probe that validates each energy function's ``is_convex``
  claim against sampled values;
* :mod:`repro.verify.oracles` — differential cross-checks of every
  heuristic and approximation against the exact oracles (exhaustive,
  branch-and-bound, Pareto enumeration, the DPs on aligned instances,
  and ``exhaustive_multiproc`` for the partitioned solvers);
* :mod:`repro.verify.shrink` — greedy delta-debugging that minimises a
  failing instance before it is reported;
* :mod:`repro.verify.harness` — the fuzz driver behind
  ``repro verify --budget N --seed S``, which writes failing instances
  as reproducer JSON replayable with ``repro solve``.
"""

from repro.verify.harness import VerifyReport, run_verification
from repro.verify.invariants import (
    Violation,
    check_convexity_claim,
    check_fptas_bound,
    check_sandwich,
    check_solution,
)
from repro.verify.oracles import (
    crosscheck,
    crosscheck_hetero,
    crosscheck_multiproc,
    crosscheck_uniproc,
)
from repro.verify.shrink import shrink_hetero, shrink_multiproc, shrink_problem
from repro.verify.strategies import (
    ALL_STRATEGIES,
    HETERO_STRATEGIES,
    MULTIPROC_STRATEGIES,
    UNIPROC_STRATEGIES,
    Strategy,
)

__all__ = [
    "Strategy",
    "ALL_STRATEGIES",
    "UNIPROC_STRATEGIES",
    "MULTIPROC_STRATEGIES",
    "HETERO_STRATEGIES",
    "Violation",
    "check_solution",
    "check_sandwich",
    "check_fptas_bound",
    "check_convexity_claim",
    "crosscheck",
    "crosscheck_uniproc",
    "crosscheck_multiproc",
    "crosscheck_hetero",
    "shrink_problem",
    "shrink_hetero",
    "shrink_multiproc",
    "VerifyReport",
    "run_verification",
]
