"""Per-solution invariant checkers and the empirical convexity probe.

Each checker returns a list of :class:`Violation` records (empty when the
invariant holds) rather than raising, so the harness can collect every
violation of an instance in one pass and the shrinker can re-evaluate a
candidate instance cheaply.

The invariant catalogue (see ``docs/verify.md``):

* **feasibility** — the accepted workload fits the capacity and every
  accepted index is in range;
* **cost arithmetic** — the stored breakdown equals a recomputation from
  the problem (energy of the accepted workload + penalties of the
  rejected set);
* **plan consistency** — ``plan(W).energy == energy(W)``, the plan
  retires exactly ``W`` cycles and covers exactly the horizon;
* **sandwich** — ``fractional_lower_bound <= cost`` for every feasible
  solution (the relaxation under-estimates the optimum, which
  under-estimates any feasible cost), and ``cost <= upper`` for solvers
  that guarantee to beat a given baseline;
* **fptas bound** — ``cost <= opt + ε·UB`` (and ``cost <= UB``);
* **convexity claim** — an ``is_convex = True`` claim is validated
  against sampled second differences and random midpoint triples; a
  discontinuous drop or concave kink larger than fp noise flags the
  claim as wrong (this probe catches the historical
  ``DiscreteEnergyFunction.is_convex`` bug that ignored ``t_sw``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.energy.base import EnergyFunction

#: Relative tolerance for all cost comparisons (fp-noise guard).
COST_RTOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant violation, ready for a report line."""

    invariant: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


def _tol(*values: float) -> float:
    """Comparison slack scaled to the magnitudes in play."""
    return COST_RTOL * max(1.0, *(abs(v) for v in values))


# --------------------------------------------------------------------- #
# Solution-level invariants                                             #
# --------------------------------------------------------------------- #


def check_solution(solution: RejectionSolution) -> list[Violation]:
    """Feasibility + cost arithmetic + speed-plan consistency."""
    problem = solution.problem
    out: list[Violation] = []
    algo = solution.algorithm

    bad = [i for i in solution.accepted if not 0 <= i < problem.n]
    if bad:
        return [
            Violation("feasibility", f"{algo}: accepted indices out of range: {bad}")
        ]
    workload = problem.workload(solution.accepted)
    if not problem.fits(workload):
        out.append(
            Violation(
                "feasibility",
                f"{algo}: accepted workload {workload!r} exceeds capacity "
                f"{problem.capacity!r}",
            )
        )
        return out

    expected = problem.cost(solution.accepted)
    if abs(expected.energy - solution.energy) > _tol(expected.energy):
        out.append(
            Violation(
                "cost",
                f"{algo}: stored energy {solution.energy!r} != recomputed "
                f"{expected.energy!r}",
            )
        )
    if abs(expected.penalty - solution.penalty) > _tol(expected.penalty):
        out.append(
            Violation(
                "cost",
                f"{algo}: stored penalty {solution.penalty!r} != recomputed "
                f"{expected.penalty!r}",
            )
        )

    fn = problem.energy_fn
    plan = solution.speed_plan()
    direct = fn.energy(min(workload, fn.max_workload))
    if abs(plan.energy - direct) > _tol(direct):
        out.append(
            Violation(
                "plan",
                f"{algo}: plan energy {plan.energy!r} != energy(W) {direct!r}",
            )
        )
    cycle_tol = 1e-6 * max(1.0, workload)
    if abs(plan.total_cycles - workload) > cycle_tol:
        out.append(
            Violation(
                "plan",
                f"{algo}: plan retires {plan.total_cycles!r} cycles for a "
                f"workload of {workload!r}",
            )
        )
    if plan.segments and abs(plan.horizon - fn.deadline) > 1e-9 * fn.deadline:
        out.append(
            Violation(
                "plan",
                f"{algo}: plan horizon {plan.horizon!r} != deadline "
                f"{fn.deadline!r}",
            )
        )
    return out


def check_sandwich(
    problem: RejectionProblem,
    solution: RejectionSolution,
    *,
    lower: float,
    upper: float | None = None,
) -> list[Violation]:
    """``lower <= cost`` always; ``cost <= upper`` when *upper* is given.

    *lower* is the fractional relaxation value (≤ OPT ≤ any feasible
    cost); *upper* applies only to solvers guaranteed to beat it — the
    exact family and the FPTAS (seeded with the repair baseline), not the
    standalone heuristics.
    """
    out: list[Violation] = []
    if solution.cost < lower - _tol(lower, solution.cost):
        out.append(
            Violation(
                "sandwich",
                f"{solution.algorithm}: cost {solution.cost!r} beats the "
                f"fractional lower bound {lower!r} — the bound (or the "
                "solution's feasibility) is wrong",
            )
        )
    if upper is not None and solution.cost > upper + _tol(upper, solution.cost):
        out.append(
            Violation(
                "sandwich",
                f"{solution.algorithm}: cost {solution.cost!r} exceeds its "
                f"guaranteed upper bound {upper!r}",
            )
        )
    return out


def check_fptas_bound(
    solution: RejectionSolution,
    *,
    opt: float,
    upper: float,
    eps: float,
) -> list[Violation]:
    """The FPTAS additive guarantee: ``cost <= opt + ε·UB`` and ``<= UB``."""
    out: list[Violation] = []
    budget = opt + eps * upper
    if solution.cost > budget + _tol(budget, solution.cost):
        out.append(
            Violation(
                "fptas",
                f"fptas(eps={eps}): cost {solution.cost!r} exceeds "
                f"opt + eps*UB = {budget!r} (opt={opt!r}, UB={upper!r})",
            )
        )
    if solution.cost > upper + _tol(upper, solution.cost):
        out.append(
            Violation(
                "fptas",
                f"fptas(eps={eps}): cost {solution.cost!r} exceeds its own "
                f"seed upper bound {upper!r}",
            )
        )
    return out


# --------------------------------------------------------------------- #
# Convexity probe                                                       #
# --------------------------------------------------------------------- #


def check_convexity_claim(
    fn: EnergyFunction,
    *,
    claimed: bool | None = None,
    grid: int = 257,
    triples: int = 64,
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """Empirically validate an ``is_convex`` claim on sampled workloads.

    Two probes over ``[0, max_workload]`` (finite caps only):

    * second differences on a uniform grid — a discontinuity of size
      ``J`` shows up as a ``±J`` second difference at the jump no matter
      how fine the grid is, so the historical ``t_sw`` slack-cost jump
      cannot hide between samples;
    * random midpoint triples ``w0 < w1 < w2`` checking
      ``g(w1) <= λ·g(w0) + (1−λ)·g(w2)``.

    Also checks monotonicity (the :class:`EnergyFunction` contract says
    non-decreasing) regardless of the convexity claim.  *claimed*
    defaults to ``fn.is_convex`` (True when the function does not expose
    the attribute); pass an explicit value to audit a hypothetical claim
    — the regression tests feed the pre-fix ``True`` claim through this
    to pin that the probe catches it.
    """
    if claimed is None:
        claimed = bool(getattr(fn, "is_convex", True))
    cap = fn.max_workload
    if not math.isfinite(cap) or cap <= 0.0:
        return []
    out: list[Violation] = []

    xs = np.linspace(0.0, cap, grid)
    ys = np.array([fn.energy(float(x)) for x in xs])
    scale = max(1.0, float(np.max(np.abs(ys))))
    tol = 1e-9 * scale

    drops = np.flatnonzero(ys[1:] < ys[:-1] - tol)
    if drops.size:
        k = int(drops[0])
        out.append(
            Violation(
                "monotone",
                f"{type(fn).__name__}: g decreases from g({xs[k]!r}) = "
                f"{ys[k]!r} to g({xs[k + 1]!r}) = {ys[k + 1]!r}",
            )
        )

    if claimed:
        second = ys[:-2] - 2.0 * ys[1:-1] + ys[2:]
        kinks = np.flatnonzero(second < -tol)
        if kinks.size:
            k = int(kinks[0])
            out.append(
                Violation(
                    "convexity",
                    f"{type(fn).__name__} claims convex but the second "
                    f"difference at W = {xs[k + 1]!r} is {second[k]!r} "
                    f"(g = {ys[k]!r}, {ys[k + 1]!r}, {ys[k + 2]!r})",
                )
            )
        if rng is None:
            rng = np.random.default_rng(0)
        for _ in range(triples):
            w0, w1, w2 = np.sort(rng.uniform(0.0, cap, size=3))
            if w2 - w0 <= 1e-12 * cap:
                continue
            lam = (w2 - w1) / (w2 - w0)
            chord = lam * fn.energy(float(w0)) + (1.0 - lam) * fn.energy(float(w2))
            mid = fn.energy(float(w1))
            if mid > chord + tol:
                out.append(
                    Violation(
                        "convexity",
                        f"{type(fn).__name__} claims convex but g({w1!r}) = "
                        f"{mid!r} lies {mid - chord!r} above the chord "
                        f"through W = {w0!r} and W = {w2!r}",
                    )
                )
                break
    return out
