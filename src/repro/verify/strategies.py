"""Adversarial random-instance generators for the verification harness.

Each :class:`Strategy` names one regime the solvers historically get
wrong and builds a random instance of it from a seeded NumPy generator:

* ``boundary``         — tasks whose cycles sit exactly on (or a few ulp
  around) the capacity, where strict-vs-tolerant comparisons disagree;
* ``zero_penalty``     — free-to-drop tasks (ties everywhere);
* ``huge_penalty``     — penalties far above any energy saving, driving
  the FPTAS forced-accept split;
* ``overloaded``       — ``η`` up to 4: rejection is mandatory;
* ``trivial``          — underloaded instances where accept-all is
  (usually) optimal and improvement passes must not regress it;
* ``integer``          — DP-aligned integer cycles *and* penalties so the
  pseudo-polynomial oracles join the differential;
* ``discrete_leakage`` — discrete level sets with static power and every
  sleep-overhead combination (``t_sw > 0``, ``e_sw > 0``), the regime of
  the ``is_convex`` bug;
* ``critical_leakage`` — the continuous dormant-enable analogue;
* ``multiproc*``       — partitioned instances small enough for the
  exhaustive multiprocessor oracle;
* ``hetero*``          — two-type (LP/HP) platforms small enough for the
  exhaustive typed-assignment oracle, with and without an (m,k)-firm
  skip contract, including per-type-capacity boundary tasks.

Everything an instance needs travels through :mod:`repro.io`, so failing
instances can be written as reproducer JSON and replayed bit-exactly.
The generators are deliberately shared with the hypothesis suite in
``tests/verify/`` — one instance vocabulary for fuzzing and for CI.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.rejection import MultiprocRejectionProblem, RejectionProblem
from repro.hetero.assign import HeteroRejectionProblem
from repro.hetero.mk import MKSpec
from repro.hetero.platform import lp_hp_platform
from repro.energy import (
    ContinuousEnergyFunction,
    CriticalSpeedEnergyFunction,
    DiscreteEnergyFunction,
    EnergyFunction,
)
from repro.power import DormantMode, PolynomialPowerModel
from repro.power.discrete import SpeedLevels
from repro.tasks import FrameTask, FrameTaskSet


@dataclass(frozen=True)
class Strategy:
    """A named adversarial instance generator.

    Attributes
    ----------
    name:
        Stable identifier (used in reports and reproducer file names).
    kind:
        ``"uniproc"``, ``"multiproc"`` or ``"hetero"`` — selects the
        oracle family.
    build:
        Seeded generator → problem instance.
    """

    name: str
    kind: str
    build: Callable[
        [np.random.Generator],
        RejectionProblem | MultiprocRejectionProblem | HeteroRejectionProblem,
    ]


# --------------------------------------------------------------------- #
# Platform menu                                                         #
# --------------------------------------------------------------------- #

#: Sleep-overhead menu: the four qualitative regimes of the slack policy.
_DORMANT_MENU = (
    DormantMode(t_sw=0.0, e_sw=0.0),
    DormantMode(t_sw=0.3, e_sw=0.0),  # the pre-fix is_convex blind spot
    DormantMode(t_sw=0.0, e_sw=0.05),
    DormantMode(t_sw=0.25, e_sw=0.04),
)


def _power_model(rng: np.random.Generator, *, static: bool = True) -> PolynomialPowerModel:
    """A random (serialisable) polynomial power model."""
    beta0 = float(rng.choice([0.0, 0.05, 0.2] if static else [0.0]))
    s_max = float(rng.choice([1.0, 2.0]))
    return PolynomialPowerModel(beta0=beta0, beta1=1.52, alpha=3.0, s_max=s_max)


def random_energy_fn(
    rng: np.random.Generator, *, deadline: float = 1.0
) -> EnergyFunction:
    """One of the three serialisable energy-function families, any regime.

    Includes the non-convex dormant-enable overheads on purpose: the
    solvers must either handle them or substitute a convex lower bound,
    and the harness checks the ``is_convex`` claim empirically.
    """
    kind = rng.integers(0, 3)
    model = _power_model(rng)
    if kind == 0:
        return ContinuousEnergyFunction(model, deadline)
    if kind == 1:
        dormant = _DORMANT_MENU[int(rng.integers(0, len(_DORMANT_MENU)))]
        return CriticalSpeedEnergyFunction(model, deadline, dormant=dormant)
    n_levels = int(rng.integers(2, 6))
    levels = SpeedLevels(model.s_max * (k + 1) / n_levels for k in range(n_levels))
    dormant = (
        _DORMANT_MENU[int(rng.integers(0, len(_DORMANT_MENU)))]
        if rng.random() < 0.75
        else None
    )
    return DiscreteEnergyFunction(model, levels, deadline, dormant=dormant)


def _tasks(
    rng: np.random.Generator,
    n: int,
    capacity: float,
    *,
    load: float,
    penalty_scale: float,
) -> list[FrameTask]:
    """Random tasks hitting system load ``Σc / capacity == load``."""
    raw = rng.uniform(0.5, 2.0, size=n)
    cycles = raw * (load * capacity / raw.sum())
    penalties = penalty_scale * cycles * rng.uniform(0.2, 1.8, size=n)
    return [
        FrameTask(name=f"t{i}", cycles=float(c), penalty=float(p))
        for i, (c, p) in enumerate(zip(cycles, penalties))
    ]


def _problem(tasks: list[FrameTask], fn: EnergyFunction) -> RejectionProblem:
    return RejectionProblem(tasks=FrameTaskSet(tasks), energy_fn=fn)


# --------------------------------------------------------------------- #
# Uniprocessor strategies                                               #
# --------------------------------------------------------------------- #


def build_boundary(rng: np.random.Generator) -> RejectionProblem:
    """Tasks exactly on — and a few ulp around — the capacity.

    The differential killer for inconsistent tolerances: a heuristic
    with a strict ``cycles <= cap`` pre-filter rejects the +ulp task
    while the exact solvers (tolerant feasibility) accept it.
    """
    fn = random_energy_fn(rng)
    cap = fn.max_workload
    n = int(rng.integers(2, 6))
    tasks = _tasks(rng, n, cap, load=float(rng.uniform(0.8, 1.6)), penalty_scale=1.0)
    exact = FrameTask(name="edge", cycles=cap, penalty=float(rng.uniform(0.1, 2.0)))
    above = FrameTask(
        name="ulp_above",
        cycles=float(np.nextafter(cap, np.inf)),
        penalty=float(rng.uniform(0.1, 2.0)),
    )
    below = FrameTask(
        name="ulp_below",
        cycles=float(np.nextafter(cap, 0.0)),
        penalty=float(rng.uniform(0.1, 2.0)),
    )
    extras = [exact, above, below]
    order = [int(k) for k in rng.permutation(len(extras))]
    keep = 1 + int(rng.integers(0, len(extras)))
    return _problem(tasks + [extras[k] for k in order[:keep]], fn)


def build_zero_penalty(rng: np.random.Generator) -> RejectionProblem:
    """A mix of zero-penalty (best-effort) and ordinary tasks."""
    fn = random_energy_fn(rng)
    cap = fn.max_workload
    n = int(rng.integers(2, 8))
    tasks = _tasks(rng, n, cap, load=float(rng.uniform(0.5, 2.0)), penalty_scale=1.0)
    zeroed = [
        FrameTask(name=t.name, cycles=t.cycles, penalty=0.0)
        if rng.random() < 0.5
        else t
        for t in tasks
    ]
    return _problem(zeroed, fn)


def build_huge_penalty(rng: np.random.Generator) -> RejectionProblem:
    """Penalties orders of magnitude above the energy scale.

    Drives the FPTAS forced-accept split and the greedy improvement
    guards; with an overloaded instance some huge-penalty task must
    still be rejected.
    """
    fn = random_energy_fn(rng)
    cap = fn.max_workload
    n = int(rng.integers(2, 7))
    tasks = _tasks(rng, n, cap, load=float(rng.uniform(0.7, 2.5)), penalty_scale=1.0)
    boosted = [
        FrameTask(name=t.name, cycles=t.cycles, penalty=t.penalty * 1e6)
        if rng.random() < 0.4
        else t
        for t in tasks
    ]
    return _problem(boosted, fn)


def build_overloaded(rng: np.random.Generator) -> RejectionProblem:
    """Heavy overload (η up to 4): rejection is mandatory."""
    fn = random_energy_fn(rng)
    n = int(rng.integers(2, 9))
    tasks = _tasks(
        rng,
        n,
        fn.max_workload,
        load=float(rng.uniform(1.5, 4.0)),
        penalty_scale=float(rng.uniform(0.5, 3.0)),
    )
    return _problem(tasks, fn)


def build_trivial(rng: np.random.Generator) -> RejectionProblem:
    """Underloaded instances; accept-all is usually optimal."""
    fn = random_energy_fn(rng)
    n = int(rng.integers(1, 7))
    tasks = _tasks(
        rng,
        n,
        fn.max_workload,
        load=float(rng.uniform(0.1, 0.8)),
        penalty_scale=float(rng.uniform(1.0, 4.0)),
    )
    return _problem(tasks, fn)


def build_integer(rng: np.random.Generator) -> RejectionProblem:
    """Integer cycles and penalties: the DP oracles join the differential."""
    model = _power_model(rng)
    deadline = 16.0 / model.s_max  # capacity: 16 integer cycles
    fn = ContinuousEnergyFunction(model, deadline)
    n = int(rng.integers(2, 8))
    tasks = [
        FrameTask(
            name=f"t{i}",
            cycles=float(rng.integers(1, 9)),
            penalty=float(rng.integers(0, 12)),
        )
        for i in range(n)
    ]
    return _problem(tasks, fn)


def build_discrete_leakage(rng: np.random.Generator) -> RejectionProblem:
    """Discrete levels + static power + every sleep-overhead combination.

    The exact regime of the historical ``is_convex`` hole (``e_sw == 0``
    with ``t_sw > 0``): the convexity probe and the relaxation sandwich
    must agree on these.
    """
    model = PolynomialPowerModel(
        beta0=float(rng.choice([0.05, 0.2])), beta1=1.52, alpha=3.0, s_max=1.0
    )
    n_levels = int(rng.integers(2, 6))
    levels = SpeedLevels((k + 1) / n_levels for k in range(n_levels))
    dormant = _DORMANT_MENU[int(rng.integers(0, len(_DORMANT_MENU)))]
    fn = DiscreteEnergyFunction(model, levels, 1.0, dormant=dormant)
    n = int(rng.integers(2, 7))
    tasks = _tasks(
        rng, n, fn.max_workload, load=float(rng.uniform(0.3, 2.0)), penalty_scale=1.0
    )
    return _problem(tasks, fn)


def build_critical_leakage(rng: np.random.Generator) -> RejectionProblem:
    """Continuous dormant-enable processor across the overhead menu."""
    model = PolynomialPowerModel(
        beta0=float(rng.choice([0.05, 0.2])), beta1=1.52, alpha=3.0, s_max=1.0
    )
    dormant = _DORMANT_MENU[int(rng.integers(0, len(_DORMANT_MENU)))]
    fn = CriticalSpeedEnergyFunction(model, 1.0, dormant=dormant)
    n = int(rng.integers(2, 7))
    tasks = _tasks(
        rng, n, fn.max_workload, load=float(rng.uniform(0.3, 2.5)), penalty_scale=1.0
    )
    return _problem(tasks, fn)


# --------------------------------------------------------------------- #
# Multiprocessor strategies                                             #
# --------------------------------------------------------------------- #


def build_multiproc(rng: np.random.Generator) -> MultiprocRejectionProblem:
    """Small partitioned instances within the exhaustive oracle's reach."""
    fn = random_energy_fn(rng)
    m = int(rng.integers(2, 4))
    n = int(rng.integers(2, 7))  # (m+1)^n <= 4^6 = 4096 assignments
    tasks = _tasks(
        rng,
        n,
        m * fn.max_workload,
        load=float(rng.uniform(0.4, 1.8)),
        penalty_scale=float(rng.uniform(0.5, 2.0)),
    )
    return MultiprocRejectionProblem(tasks=FrameTaskSet(tasks), energy_fn=fn, m=m)


def build_multiproc_boundary(rng: np.random.Generator) -> MultiprocRejectionProblem:
    """Partitioned instances with per-core-capacity boundary tasks."""
    fn = random_energy_fn(rng)
    cap = fn.max_workload
    m = 2
    n = int(rng.integers(2, 5))
    tasks = _tasks(
        rng, n, m * cap, load=float(rng.uniform(0.5, 1.5)), penalty_scale=1.0
    )
    tasks.append(
        FrameTask(name="edge", cycles=cap, penalty=float(rng.uniform(0.1, 2.0)))
    )
    return MultiprocRejectionProblem(tasks=FrameTaskSet(tasks), energy_fn=fn, m=m)


# --------------------------------------------------------------------- #
# Heterogeneous (two-type) strategies                                   #
# --------------------------------------------------------------------- #


def _random_mk(rng: np.random.Generator) -> MKSpec | None:
    """An (m,k) contract about half the time, including the degenerate ones."""
    if rng.random() < 0.5:
        return None
    k = int(rng.integers(1, 5))
    m = int(rng.integers(1, k + 1))
    return MKSpec(m=m, k=k)


def build_hetero(rng: np.random.Generator) -> HeteroRejectionProblem:
    """Small LP/HP instances within the typed-enumeration oracle's reach."""
    lp = int(rng.integers(1, 3))
    hp = int(rng.integers(1, 3))
    platform = lp_hp_platform(lp, hp)
    total_cap = sum(
        ct.count * cap
        for ct, cap in zip(platform.core_types, platform.capacities())
    )
    n = int(rng.integers(2, 6))  # (C+1)^n <= 5^5 = 3125 assignments
    tasks = _tasks(
        rng,
        n,
        total_cap,
        load=float(rng.uniform(0.4, 2.0)),
        penalty_scale=float(rng.uniform(0.5, 2.0)),
    )
    return HeteroRejectionProblem(
        tasks=FrameTaskSet(tasks), platform=platform, mk=_random_mk(rng)
    )


def build_hetero_boundary(rng: np.random.Generator) -> HeteroRejectionProblem:
    """LP/HP instances with tasks pinned to the per-type capacity edges.

    A task exactly at the LP capacity fits either core type; a task just
    above it fits only an HP core — the regime where a typed router with
    an inconsistent feasibility tolerance strands work or miscounts the
    marginal.
    """
    platform = lp_hp_platform(1, int(rng.integers(1, 3)))
    caps = platform.capacities()
    lp_cap, hp_cap = min(caps), max(caps)
    n = int(rng.integers(1, 4))
    tasks = _tasks(
        rng,
        n,
        platform.total_cores * lp_cap,
        load=float(rng.uniform(0.5, 1.5)),
        penalty_scale=1.0,
    )
    tasks.append(
        FrameTask(name="lp_edge", cycles=lp_cap, penalty=float(rng.uniform(0.1, 2.0)))
    )
    if rng.random() < 0.5:
        tasks.append(
            FrameTask(
                name="hp_only",
                cycles=float(np.nextafter(lp_cap, np.inf)),
                penalty=float(rng.uniform(0.1, 2.0)),
            )
        )
    if rng.random() < 0.5:
        tasks.append(
            FrameTask(
                name="hp_edge", cycles=hp_cap, penalty=float(rng.uniform(0.1, 2.0))
            )
        )
    return HeteroRejectionProblem(
        tasks=FrameTaskSet(tasks), platform=platform, mk=_random_mk(rng)
    )


#: The uniprocessor strategy registry, in fuzzing rotation order.
UNIPROC_STRATEGIES: tuple[Strategy, ...] = (
    Strategy("boundary", "uniproc", build_boundary),
    Strategy("zero_penalty", "uniproc", build_zero_penalty),
    Strategy("huge_penalty", "uniproc", build_huge_penalty),
    Strategy("overloaded", "uniproc", build_overloaded),
    Strategy("trivial", "uniproc", build_trivial),
    Strategy("integer", "uniproc", build_integer),
    Strategy("discrete_leakage", "uniproc", build_discrete_leakage),
    Strategy("critical_leakage", "uniproc", build_critical_leakage),
)

#: The multiprocessor strategy registry.
MULTIPROC_STRATEGIES: tuple[Strategy, ...] = (
    Strategy("multiproc", "multiproc", build_multiproc),
    Strategy("multiproc_boundary", "multiproc", build_multiproc_boundary),
)

#: The heterogeneous (two-type platform) strategy registry.
HETERO_STRATEGIES: tuple[Strategy, ...] = (
    Strategy("hetero", "hetero", build_hetero),
    Strategy("hetero_boundary", "hetero", build_hetero_boundary),
)

#: Every strategy, the harness's default rotation.
ALL_STRATEGIES: tuple[Strategy, ...] = (
    UNIPROC_STRATEGIES + MULTIPROC_STRATEGIES + HETERO_STRATEGIES
)
