"""The fuzz driver behind ``repro verify``.

One *trial* = pick a strategy (round-robin so every adversarial family
gets equal budget), draw an instance from a per-trial deterministic RNG
(``default_rng([seed, trial])`` — trial ``k`` of seed ``S`` is the same
instance forever), and run the full differential cross-check.  A trial
that produces violations is shrunk with :mod:`repro.verify.shrink` and
written out as reproducer JSON that ``repro solve`` can replay.

The report separates *trials* (instances checked) from *violations*
(individual invariant breaks) so a single pathological instance that
trips five checkers still reads as one failing trial.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.rejection import MultiprocRejectionProblem, RejectionProblem
from repro.hetero.assign import HeteroRejectionProblem
from repro.io import instance_to_dict, save_instance
from repro.obs import counters as obs_counters
from repro.obs.trace import span
from repro.verify.oracles import crosscheck
from repro.verify.shrink import shrink_hetero, shrink_multiproc, shrink_problem
from repro.verify.strategies import ALL_STRATEGIES, Strategy


@dataclass(frozen=True)
class VerifyFailure:
    """One failing trial: the (shrunk) instance plus its violations."""

    strategy: str
    trial: int
    violations: tuple[str, ...]
    reproducer: Path | None


@dataclass
class VerifyReport:
    """Outcome of a verification run."""

    seed: int
    trials: int = 0
    per_strategy: dict[str, int] = field(default_factory=dict)
    failures: list[VerifyFailure] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no trial produced a violation."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"verify: {self.trials} trials, seed {self.seed}, "
            f"{len(self.failures)} failing"
        ]
        for name in sorted(self.per_strategy):
            lines.append(f"  {name}: {self.per_strategy[name]} trials")
        for failure in self.failures:
            where = f" -> {failure.reproducer}" if failure.reproducer else ""
            lines.append(
                f"FAIL [{failure.strategy} trial {failure.trial}]{where}"
            )
            for violation in failure.violations:
                lines.append(f"    {violation}")
        return "\n".join(lines)


def _still_fails(problem) -> bool:
    """Shrink predicate: does the cross-check still find anything?"""
    try:
        return bool(crosscheck(problem))
    except Exception:  # noqa: BLE001 - crashing is still failing
        return True


def _write_reproducer(
    problem,
    out_dir: Path,
    *,
    strategy: str,
    seed: int,
    trial: int,
    violations: list,
) -> Path:
    """Save the instance JSON + a sidecar describing why it failed."""
    stem = f"verify-{strategy}-seed{seed}-trial{trial}"
    algorithm = "exhaustive"
    if isinstance(problem, MultiprocRejectionProblem):
        # Instance JSON carries the shared task set + platform; `m` and
        # the replay hint live in the sidecar (repro solve is uniproc).
        path = out_dir / f"{stem}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        uni = RejectionProblem(tasks=problem.tasks, energy_fn=problem.energy_fn)
        with open(path, "w") as fh:
            json.dump(instance_to_dict(uni), fh, indent=2, sort_keys=True)
            fh.write("\n")
        extra = {"m": problem.m}
    else:
        # Uniproc and hetero instances round-trip through repro.io
        # directly (the hetero schema carries the platform and mk spec).
        path = save_instance(problem, out_dir / f"{stem}.json")
        extra = {}
        if isinstance(problem, HeteroRejectionProblem):
            algorithm = "exhaustive_hetero"
    meta = {
        "strategy": strategy,
        "seed": seed,
        "trial": trial,
        "violations": [str(v) for v in violations],
        "replay": f"repro solve {path.name} --algorithm {algorithm}",
        **extra,
    }
    with open(path.with_suffix(".meta.json"), "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_verification(
    *,
    budget: int = 200,
    seed: int = 0,
    strategies: tuple[Strategy, ...] = ALL_STRATEGIES,
    out_dir: str | Path | None = None,
    shrink: bool = True,
    log: Callable[[str], None] | None = None,
) -> VerifyReport:
    """Run *budget* differential-testing trials and return the report.

    Parameters
    ----------
    budget:
        Number of instances to generate and cross-check.
    seed:
        Root seed; trial ``t`` uses ``default_rng([seed, t])`` so any
        failing trial can be regenerated in isolation.
    strategies:
        Adversarial families to rotate through (round-robin).
    out_dir:
        Where to write reproducer JSON for failing trials (skipped when
        None).
    shrink:
        Minimise failing instances before reporting (disable for speed
        when triaging a flood of failures).
    log:
        Optional sink for one progress line per failure.
    """
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget!r}")
    report = VerifyReport(seed=seed)
    out_path = Path(out_dir) if out_dir is not None else None
    parent_registry = obs_counters.active()
    with obs_counters.counting() as registry:
        for trial in range(budget):
            strategy = strategies[trial % len(strategies)]
            rng = np.random.default_rng([seed, trial])
            report.trials += 1
            report.per_strategy[strategy.name] = (
                report.per_strategy.get(strategy.name, 0) + 1
            )
            obs_counters.add(f"verify.{strategy.name}.trials")
            with span("verify.trial", strategy=strategy.name, trial=trial):
                problem = strategy.build(rng)
                try:
                    violations = crosscheck(problem, rng=rng)
                except Exception as exc:  # noqa: BLE001 - harness must not die
                    violations = [f"harness: crosscheck crashed: {exc!r}"]
            if not violations:
                continue
            obs_counters.add("verify.findings")
            obs_counters.add(
                f"verify.{strategy.name}.violations", len(violations)
            )
            _handle_failure(
                report,
                problem,
                violations,
                strategy=strategy,
                seed=seed,
                trial=trial,
                out_path=out_path,
                shrink=shrink,
                log=log,
            )
    report.counters = registry.snapshot()
    if parent_registry is not None:
        parent_registry.merge(report.counters)
    return report


def _handle_failure(
    report: VerifyReport,
    problem,
    violations: list,
    *,
    strategy: Strategy,
    seed: int,
    trial: int,
    out_path: Path | None,
    shrink: bool,
    log: Callable[[str], None] | None,
) -> None:
    """Shrink, persist, and record one failing trial."""
    if shrink:
        with span("verify.shrink", strategy=strategy.name, trial=trial):
            if isinstance(problem, HeteroRejectionProblem):
                problem = shrink_hetero(problem, _still_fails)
            elif isinstance(problem, MultiprocRejectionProblem):
                problem = shrink_multiproc(problem, _still_fails)
            else:
                problem = shrink_problem(problem, _still_fails)
            try:
                final = crosscheck(problem)
            except Exception as exc:  # noqa: BLE001
                final = [
                    f"harness: crosscheck crashed on shrunk instance: {exc!r}"
                ]
        if final:
            violations = final
    reproducer = None
    if out_path is not None:
        reproducer = _write_reproducer(
            problem,
            out_path,
            strategy=strategy.name,
            seed=seed,
            trial=trial,
            violations=violations,
        )
    failure = VerifyFailure(
        strategy=strategy.name,
        trial=trial,
        violations=tuple(str(v) for v in violations),
        reproducer=reproducer,
    )
    report.failures.append(failure)
    if log is not None:
        log(
            f"FAIL [{strategy.name} trial {trial}]: "
            f"{failure.violations[0]}"
        )
