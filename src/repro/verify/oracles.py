"""Differential cross-checks of every solver against the exact oracles.

The oracle chain on a uniprocessor instance (small ``n``):

* ``exhaustive`` is the ground truth;
* ``branch_and_bound`` and ``pareto_exact`` must match it exactly —
  three independent implementations of optimality;
* ``dp_cycles`` / ``dp_penalty`` must match on quantum-aligned
  instances (integer cycles resp. integer penalties);
* ``fptas`` must land within ``opt + ε·UB``;
* every heuristic must produce a feasible solution costing at least
  the optimum (a "heuristic" that beats the oracle means the oracle —
  or the feasibility tolerance — is broken);
* ``fractional_lower_bound`` must not exceed the optimum.

On a multiprocessor instance the oracle is ``exhaustive_multiproc`` and
the same spirit applies to ``ltf_reject`` / ``rand_reject`` /
``global_greedy_reject`` and ``pooled_lower_bound``.

On a heterogeneous (two-type) instance the oracle is
``exhaustive_hetero``; ``typed_ltf_reject`` / ``typed_global_reject``
must not beat it and ``hetero_pooled_lower_bound`` must not exceed it.
When the instance carries an (m,k) contract the skip-policy invariants
are checked too: the decision stream of a fresh
:class:`~repro.core.rejection.online.MKFirmSkipPolicy` never violates
any m-of-k window, and replaying the same arrivals through a second
fresh policy reproduces it decision-for-decision.

Solver crashes are reported as violations too — an unexpected exception
on a generated instance is exactly the kind of regression this harness
exists to catch.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.rejection import (
    MKFirmSkipPolicy,
    MultiprocRejectionProblem,
    RejectionProblem,
    accept_all_repair,
    branch_and_bound,
    dp_cycles,
    dp_penalty,
    exhaustive,
    exhaustive_multiproc,
    fptas,
    fractional_lower_bound,
    global_greedy_reject,
    greedy_density,
    greedy_marginal,
    lp_rounding,
    ltf_reject,
    pareto_exact,
    pooled_lower_bound,
    rand_reject,
    reject_random,
)
from repro.core.rejection.multiproc import MAX_ENUM_ASSIGNMENTS
from repro.hetero.assign import (
    HeteroRejectionProblem,
    exhaustive_hetero,
    hetero_pooled_lower_bound,
    typed_global_reject,
    typed_ltf_reject,
)
from repro.hetero.assign import MAX_ENUM_ASSIGNMENTS as MAX_HETERO_ASSIGNMENTS
from repro.hetero.mk import mk_window_ok
from repro.obs.trace import span
from repro.verify.invariants import (
    Violation,
    check_convexity_claim,
    check_fptas_bound,
    check_sandwich,
    check_solution,
)

#: Cost-agreement tolerance between two exact solvers.
EXACT_RTOL = 1e-9

#: Largest n handed to the subset-enumeration oracle.
MAX_ORACLE_N = 16

#: ε values exercised for the FPTAS bound.
FPTAS_EPS = (0.5, 0.1)


def _tol(*values: float) -> float:
    return EXACT_RTOL * max(1.0, *(abs(v) for v in values))


def _run(
    name: str, call: Callable[[], object], violations: list[Violation]
) -> object | None:
    """Run one solver, converting an unexpected exception to a violation."""
    try:
        with span("verify.oracle", oracle=name):
            return call()
    except Exception as exc:  # noqa: BLE001 - every crash is a finding
        violations.append(
            Violation("crash", f"{name} raised {type(exc).__name__}: {exc}")
        )
        return None


def crosscheck_uniproc(
    problem: RejectionProblem,
    *,
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """All uniprocessor invariants + differential checks on *problem*."""
    out: list[Violation] = []
    out.extend(check_convexity_claim(problem.energy_fn, rng=rng))
    if problem.n > MAX_ORACLE_N:
        raise ValueError(
            f"n={problem.n} is too large for the exhaustive oracle "
            f"(limit {MAX_ORACLE_N}); generate smaller instances"
        )

    oracle = _run("exhaustive", lambda: exhaustive(problem), out)
    if oracle is None:
        return out
    out.extend(check_solution(oracle))
    opt = oracle.cost

    lower = _run(
        "fractional_lower_bound", lambda: fractional_lower_bound(problem), out
    )
    if lower is not None and lower > opt + _tol(lower, opt):
        out.append(
            Violation(
                "bound",
                f"fractional_lower_bound {lower!r} exceeds the optimum "
                f"{opt!r} — the relaxation is not a lower bound here",
            )
        )

    repair = _run("accept_all_repair", lambda: accept_all_repair(problem), out)
    upper = repair.cost if repair is not None else None

    # Independent exact solvers must agree with the oracle bit-for-bit
    # (up to fp noise in the cost sum).
    for name, solver in (
        ("branch_and_bound", branch_and_bound),
        ("pareto_exact", pareto_exact),
    ):
        sol = _run(name, lambda s=solver: s(problem), out)
        if sol is None:
            continue
        out.extend(check_solution(sol))
        if abs(sol.cost - opt) > _tol(sol.cost, opt):
            out.append(
                Violation(
                    "oracle",
                    f"{name} cost {sol.cost!r} != exhaustive optimum {opt!r} "
                    f"(accepted {sorted(sol.accepted)} vs "
                    f"{sorted(oracle.accepted)})",
                )
            )

    # The DPs are exact only on quantum-aligned instances.
    cycles_aligned = all(float(t.cycles).is_integer() for t in problem.tasks)
    penalties_aligned = all(float(t.penalty).is_integer() for t in problem.tasks)
    dp_solvers: list[tuple[str, Callable[[], object]]] = []
    if cycles_aligned:
        dp_solvers.append(("dp_cycles", lambda: dp_cycles(problem)))
    if penalties_aligned:
        dp_solvers.append(("dp_penalty", lambda: dp_penalty(problem)))
    for name, call in dp_solvers:
        try:
            with span("verify.oracle", oracle=name):
                sol = call()
        except ValueError as exc:
            if "DP cells" in str(exc):  # table guard, not a bug
                continue
            out.append(Violation("crash", f"{name} raised ValueError: {exc}"))
            continue
        except Exception as exc:  # noqa: BLE001
            out.append(
                Violation("crash", f"{name} raised {type(exc).__name__}: {exc}")
            )
            continue
        out.extend(check_solution(sol))
        if abs(sol.cost - opt) > _tol(sol.cost, opt):
            out.append(
                Violation(
                    "oracle",
                    f"{name} cost {sol.cost!r} != exhaustive optimum {opt!r} "
                    "on a quantum-aligned instance",
                )
            )

    # Heuristics: feasible, at least the optimum, at least the relaxation.
    heuristics: list[tuple[str, Callable[[], object]]] = [
        ("greedy_density", lambda: greedy_density(problem)),
        ("greedy_marginal", lambda: greedy_marginal(problem)),
        ("lp_rounding", lambda: lp_rounding(problem)),
        ("accept_all_repair", lambda: repair),
        (
            "reject_random",
            lambda: reject_random(problem, rng or np.random.default_rng(0)),
        ),
    ]
    for name, call in heuristics:
        sol = _run(name, call, out)
        if sol is None:
            continue
        out.extend(check_solution(sol))
        if sol.cost < opt - _tol(sol.cost, opt):
            out.append(
                Violation(
                    "oracle",
                    f"{name} cost {sol.cost!r} beats the exhaustive optimum "
                    f"{opt!r} — the oracle or the feasibility tolerance is "
                    "wrong",
                )
            )
        if lower is not None:
            out.extend(check_sandwich(problem, sol, lower=lower))

    # Oracle itself obeys the sandwich against the repair baseline.
    if lower is not None:
        out.extend(check_sandwich(problem, oracle, lower=lower, upper=upper))

    if upper is not None:
        for eps in FPTAS_EPS:
            sol = _run(f"fptas(eps={eps})", lambda e=eps: fptas(problem, eps=e), out)
            if sol is None:
                continue
            out.extend(check_solution(sol))
            out.extend(check_fptas_bound(sol, opt=opt, upper=upper, eps=eps))
    return out


def crosscheck_multiproc(
    problem: MultiprocRejectionProblem,
    *,
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """Partitioned-multiprocessor differential checks on *problem*."""
    out: list[Violation] = []
    out.extend(check_convexity_claim(problem.energy_fn, rng=rng))
    if (problem.m + 1) ** problem.n > MAX_ENUM_ASSIGNMENTS:
        raise ValueError(
            f"(m+1)^n = {(problem.m + 1) ** problem.n} exceeds the "
            "enumeration oracle guard; generate smaller instances"
        )

    oracle = _run("exhaustive_multiproc", lambda: exhaustive_multiproc(problem), out)
    if oracle is None:
        return out
    opt = oracle.cost

    lower = _run("pooled_lower_bound", lambda: pooled_lower_bound(problem), out)
    if lower is not None and lower > opt + _tol(lower, opt):
        out.append(
            Violation(
                "bound",
                f"pooled_lower_bound {lower!r} exceeds the multiproc optimum "
                f"{opt!r}",
            )
        )

    heuristics: list[tuple[str, Callable[[], object]]] = [
        ("ltf_reject", lambda: ltf_reject(problem)),
        (
            "rand_reject",
            lambda: rand_reject(problem, rng or np.random.default_rng(0)),
        ),
        ("global_greedy_reject", lambda: global_greedy_reject(problem)),
    ]
    for name, call in heuristics:
        # problem.solution() inside each solver already validates the
        # partition (per-core capacity, index coverage); a raise here is
        # an infeasible heuristic output and lands in `out` as a crash.
        sol = _run(name, call, out)
        if sol is None:
            continue
        if sol.cost < opt - _tol(sol.cost, opt):
            out.append(
                Violation(
                    "oracle",
                    f"{name} cost {sol.cost!r} beats exhaustive_multiproc "
                    f"{opt!r}",
                )
            )
        if lower is not None and sol.cost < lower - _tol(sol.cost, lower):
            out.append(
                Violation(
                    "bound",
                    f"{name} cost {sol.cost!r} beats pooled_lower_bound "
                    f"{lower!r}",
                )
            )
    return out


def _drive_mk_policy(problem: HeteroRejectionProblem) -> MKFirmSkipPolicy:
    """Run a *fresh* (m,k) skip policy over the instance's arrival order.

    The controller contract mirrors :func:`run_online`: a task that
    cannot fit the reference core at all is dropped without consulting
    the policy (a forced skip outside the weakly-hard window).
    """
    spec = problem.mk
    assert spec is not None
    policy = MKFirmSkipPolicy(spec.m, spec.k)
    fn = problem.platform.energy_functions()[0]
    cap = fn.max_workload
    workload = 0.0
    for task in problem.tasks:
        if workload + task.cycles > cap * (1.0 + 1e-12):
            continue
        if policy.admit(task, workload, fn):
            workload += task.cycles
    return policy


def crosscheck_hetero(
    problem: HeteroRejectionProblem,
    *,
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """Heterogeneous-platform differential checks on *problem*."""
    out: list[Violation] = []
    for fn in problem.platform.energy_functions():
        out.extend(check_convexity_claim(fn, rng=rng))
    total = problem.platform.total_cores
    if (total + 1) ** problem.n > MAX_HETERO_ASSIGNMENTS:
        raise ValueError(
            f"(C+1)^n = {(total + 1) ** problem.n} exceeds the typed "
            "enumeration oracle guard; generate smaller instances"
        )

    oracle = _run("exhaustive_hetero", lambda: exhaustive_hetero(problem), out)
    if oracle is None:
        return out
    opt = oracle.cost

    lower = _run(
        "hetero_pooled_lower_bound",
        lambda: hetero_pooled_lower_bound(problem),
        out,
    )
    if lower is not None and lower > opt + _tol(lower, opt):
        out.append(
            Violation(
                "bound",
                f"hetero_pooled_lower_bound {lower!r} exceeds the typed "
                f"optimum {opt!r}",
            )
        )

    heuristics: list[tuple[str, Callable[[], object]]] = [
        ("typed_ltf_reject", lambda: typed_ltf_reject(problem)),
        ("typed_global_reject", lambda: typed_global_reject(problem)),
    ]
    for name, call in heuristics:
        # solution() inside each solver validates the typed partition
        # (per-core capacity on the right core type, index coverage); a
        # raise here is an infeasible heuristic output and lands in
        # `out` as a crash.
        sol = _run(name, call, out)
        if sol is None:
            continue
        if sol.cost < opt - _tol(sol.cost, opt):
            out.append(
                Violation(
                    "oracle",
                    f"{name} cost {sol.cost!r} beats exhaustive_hetero "
                    f"{opt!r}",
                )
            )
        if lower is not None and sol.cost < lower - _tol(sol.cost, lower):
            out.append(
                Violation(
                    "bound",
                    f"{name} cost {sol.cost!r} beats "
                    f"hetero_pooled_lower_bound {lower!r}",
                )
            )

    if problem.mk is not None:
        spec = problem.mk
        first = _run("mk_skip_policy", lambda: _drive_mk_policy(problem), out)
        if first is not None:
            if not mk_window_ok(first.decisions, spec.m, spec.k):
                out.append(
                    Violation(
                        "mk",
                        f"skip stream {first.decisions!r} violates the "
                        f"({spec.m},{spec.k})-firm window",
                    )
                )
            second = _run(
                "mk_skip_policy_replay", lambda: _drive_mk_policy(problem), out
            )
            if second is not None and second.decisions != first.decisions:
                out.append(
                    Violation(
                        "mk",
                        "replaying the arrivals through a fresh "
                        f"({spec.m},{spec.k}) policy diverged: "
                        f"{second.decisions!r} != {first.decisions!r}",
                    )
                )
    return out


def crosscheck(
    problem: RejectionProblem | MultiprocRejectionProblem | HeteroRejectionProblem,
    *,
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """Dispatch to the matching cross-check for the problem family."""
    if isinstance(problem, HeteroRejectionProblem):
        return crosscheck_hetero(problem, rng=rng)
    if isinstance(problem, MultiprocRejectionProblem):
        return crosscheck_multiproc(problem, rng=rng)
    return crosscheck_uniproc(problem, rng=rng)
