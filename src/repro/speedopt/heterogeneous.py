"""Optimal speeds for tasks with different power coefficients.

Setting: one processor, frame deadline ``D``, tasks with cycles ``ci``
and per-task dynamic power ``Pi(s) = ρi · s**α`` (same exponent, different
coefficients — the "different power characteristics" model behind the
LEET/LEUF algorithms).  Choosing per-task execution times ``ti = ci/si``
the energy is

    E = Σ ρi · ci**α · ti**(1−α)        with  Σ ti = D.

Lagrange/KKT gives the closed form ``ti ∝ ci · ρi**(1/α)``: tasks with a
higher power coefficient get disproportionately more time (run slower).
With equal coefficients this degenerates to the common-speed optimum.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import require_positive


@dataclass(frozen=True)
class HeterogeneousAssignment:
    """The optimal per-task time/speed allocation.

    Attributes
    ----------
    times:
        Execution time per task (sums to the deadline).
    speeds:
        Per-task constant speed ``ci / ti``.
    energy:
        Total dynamic energy of the allocation.
    """

    times: tuple[float, ...]
    speeds: tuple[float, ...]
    energy: float


def heterogeneous_assignment(
    cycles: Sequence[float],
    coefficients: Sequence[float],
    *,
    deadline: float,
    alpha: float = 3.0,
    s_max: float = math.inf,
) -> HeterogeneousAssignment:
    """Closed-form optimal allocation (see module docstring).

    Parameters
    ----------
    cycles, coefficients:
        Per-task ``ci`` and ``ρi`` (all > 0, same length).
    deadline:
        The shared frame deadline ``D``.
    alpha:
        The common power exponent (> 1).
    s_max:
        Optional speed cap.  The unconstrained optimum is clamped by
        iteratively pinning capped tasks at ``s_max`` and re-solving on
        the remainder (the standard KKT active-set argument); raises when
        even running everything at ``s_max`` misses the deadline.
    """
    if len(cycles) != len(coefficients):
        raise ValueError(
            f"cycles and coefficients disagree on length "
            f"({len(cycles)} != {len(coefficients)})"
        )
    if not cycles:
        raise ValueError("need at least one task")
    for c in cycles:
        require_positive("cycles", c)
    for r in coefficients:
        require_positive("coefficient", r)
    require_positive("deadline", deadline)
    if not alpha > 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha!r}")

    if sum(cycles) / s_max > deadline * (1 + 1e-12):
        raise ValueError(
            "infeasible: total cycles exceed s_max * deadline "
            f"({sum(cycles)} > {s_max * deadline})"
        )

    n = len(cycles)
    pinned = [False] * n
    times = [0.0] * n
    for _ in range(n + 1):
        free = [i for i in range(n) if not pinned[i]]
        budget = deadline - sum(cycles[i] / s_max for i in range(n) if pinned[i])
        if not free:
            break
        weights = [cycles[i] * coefficients[i] ** (1.0 / alpha) for i in free]
        total_weight = sum(weights)
        for i, w in zip(free, weights):
            times[i] = budget * w / total_weight
        # Pin any task now exceeding the speed cap and re-solve.
        newly_pinned = False
        for i in free:
            if cycles[i] / times[i] > s_max * (1 + 1e-12):
                pinned[i] = True
                newly_pinned = True
        if not newly_pinned:
            break
    for i in range(n):
        if pinned[i]:
            times[i] = cycles[i] / s_max

    speeds = tuple(c / t for c, t in zip(cycles, times))
    energy = sum(
        r * c**alpha * t ** (1.0 - alpha)
        for r, c, t in zip(coefficients, cycles, times)
    )
    return HeterogeneousAssignment(
        times=tuple(times), speeds=speeds, energy=energy
    )
