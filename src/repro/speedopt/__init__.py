"""Optimal speed-assignment substrate.

Beyond the single-speed results baked into :mod:`repro.energy`, two
classic pieces of DVS machinery used across the experiments and tests:

* :mod:`repro.speedopt.heterogeneous` — closed-form Lagrange (KKT) time
  allocation for tasks with *different* power coefficients sharing one
  deadline (the substrate behind the LEET/LEUF family);
* :mod:`repro.speedopt.yds` — the Yao–Demers–Shenker optimal continuous
  speed schedule for aperiodic jobs with individual arrivals/deadlines,
  used for slack analysis and as an independent optimality oracle.
"""

from repro.speedopt.heterogeneous import (
    HeterogeneousAssignment,
    heterogeneous_assignment,
)
from repro.speedopt.yds import Job, YdsSchedule, yds_schedule

__all__ = [
    "HeterogeneousAssignment",
    "heterogeneous_assignment",
    "Job",
    "YdsSchedule",
    "yds_schedule",
]
