"""Yao–Demers–Shenker (FOCS'95) optimal continuous speed schedule.

Input: aperiodic jobs, each with arrival ``a``, deadline ``d`` and cycles
``c``; a processor with a continuous, unbounded speed range and convex
power.  YDS repeatedly finds the *critical interval* — the window
``[t1, t2]`` maximising the intensity ``Σ c / (t2 − t1)`` over jobs fully
contained in it — schedules those jobs there at the critical intensity
(EDF order inside the window), removes them, and collapses the window out
of the timeline.  The result minimises ``∫ P(s(t)) dt`` for every convex
``P`` simultaneously.

Role in this library: an independent optimality oracle for the
speed-assignment layer (frame-based inputs must reduce to the single
common speed ``W/D``) and the standard slack-analysis tool.
"""

from __future__ import annotations

import heapq as _heapq
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro._validation import require_nonnegative, require_positive
from repro.power.base import PowerModel


@dataclass(frozen=True)
class Job:
    """An aperiodic job for YDS scheduling."""

    name: str
    arrival: float
    deadline: float
    cycles: float

    def __post_init__(self) -> None:
        require_nonnegative("arrival", self.arrival)
        require_positive("cycles", self.cycles)
        if self.deadline <= self.arrival:
            raise ValueError(
                f"job {self.name!r}: deadline {self.deadline} must exceed "
                f"arrival {self.arrival}"
            )


@dataclass(frozen=True)
class ScheduledSlice:
    """One constant-speed execution slice of the YDS schedule."""

    job: str
    start: float
    end: float
    speed: float


@dataclass(frozen=True)
class YdsSchedule:
    """The full optimal schedule.

    Attributes
    ----------
    slices:
        Execution slices in time order (gaps are idle time).
    intensities:
        The critical intensities in the order discovered
        (non-increasing — a structural YDS invariant the tests check).
    """

    slices: tuple[ScheduledSlice, ...]
    intensities: tuple[float, ...]

    @property
    def max_speed(self) -> float:
        """The peak speed used (the first critical intensity)."""
        return max((s.speed for s in self.slices), default=0.0)

    def energy(self, power_model: PowerModel) -> float:
        """Energy of the schedule under *power_model* (dynamic power)."""
        return sum(
            power_model.dynamic_power(s.speed) * (s.end - s.start)
            for s in self.slices
        )

    def feasible(self, jobs: Sequence[Job], *, tol: float = 1e-9) -> bool:
        """Check every job runs within [arrival, deadline] and completes."""
        done: dict[str, float] = {}
        window = {j.name: (j.arrival, j.deadline) for j in jobs}
        for s in self.slices:
            a, d = window[s.job]
            if s.start < a - tol or s.end > d + tol:
                return False
            done[s.job] = done.get(s.job, 0.0) + (s.end - s.start) * s.speed
        return all(
            math.isclose(done.get(j.name, 0.0), j.cycles, rel_tol=1e-9, abs_tol=tol)
            for j in jobs
        )


def _critical_interval(jobs: list[Job]) -> tuple[float, float, float]:
    """(t1, t2, intensity) of the maximum-intensity interval.

    Candidate endpoints are arrivals (left) and deadlines (right); the
    intensity counts jobs with ``[a, d] ⊆ [t1, t2]``.
    """
    starts = sorted({j.arrival for j in jobs})
    ends = sorted({j.deadline for j in jobs})
    best = (0.0, 1.0, -math.inf)
    for t1 in starts:
        for t2 in ends:
            if t2 <= t1:
                continue
            load = sum(
                j.cycles for j in jobs if j.arrival >= t1 and j.deadline <= t2
            )
            if load <= 0.0:
                continue
            intensity = load / (t2 - t1)
            if intensity > best[2]:
                best = (t1, t2, intensity)
    return best


def yds_schedule(jobs: Iterable[Job]) -> YdsSchedule:
    """Compute the YDS-optimal schedule for *jobs*.

    O(n³)-ish reference implementation (the critical interval is found by
    scanning all arrival/deadline pairs) — fine for the oracle role; the
    library never puts it on a hot path.
    """
    remaining = list(jobs)
    if not remaining:
        return YdsSchedule(slices=(), intensities=())
    names = [j.name for j in remaining]
    if len(set(names)) != len(names):
        raise ValueError("job names must be unique")

    original_windows = {j.name: (j.arrival, j.deadline) for j in remaining}
    slices: list[ScheduledSlice] = []
    intensities: list[float] = []

    # Work on a copy whose time axis gets collapsed after each round.
    # `carved` holds, in ORIGINAL coordinates, the (disjoint, sorted)
    # intervals already claimed by earlier rounds; collapsed coordinates
    # are original coordinates with those intervals removed.
    carved: list[tuple[float, float]] = []

    def to_original(t: float) -> float:
        """Map a collapsed-time instant back to original time."""
        shift = t
        for a, b in carved:
            if a <= shift + 1e-15:
                shift += b - a
            else:
                break
        return shift

    def original_pieces(s: float, e: float) -> list[tuple[float, float]]:
        """Original-time image of the collapsed interval [s, e].

        The image is [to(s), to(e)] minus the carved gaps inside it — a
        collapsed interval can straddle windows claimed by earlier
        (higher-intensity) rounds, so it maps to multiple pieces.
        """
        lo, hi = to_original(s), to_original(e)
        pieces: list[tuple[float, float]] = []
        cursor = lo
        for a, b in carved:
            if b <= cursor + 1e-15 or a >= hi - 1e-15:
                continue
            if a > cursor + 1e-15:
                pieces.append((cursor, a))
            cursor = max(cursor, b)
        if cursor < hi - 1e-15:
            pieces.append((cursor, hi))
        return pieces

    while remaining:
        t1, t2, intensity = _critical_interval(remaining)
        if intensity <= 0:  # pragma: no cover - jobs always have cycles
            break
        intensities.append(intensity)
        inside = [
            j for j in remaining if j.arrival >= t1 and j.deadline <= t2
        ]
        # Preemptive EDF inside the window at the critical intensity:
        # the window is exactly saturated, so EDF fits every job within
        # its own [arrival, deadline] (the YDS feasibility argument).
        pending = sorted(inside, key=lambda j: (j.arrival, j.deadline, j.name))
        left = {j.name: j.cycles for j in inside}
        ready: list[tuple[float, str]] = []
        clock = t1
        idx = 0
        while ready or idx < len(pending):
            while idx < len(pending) and pending[idx].arrival <= clock + 1e-15:
                _heapq.heappush(
                    ready, (pending[idx].deadline, pending[idx].name)
                )
                idx += 1
            if not ready:
                clock = pending[idx].arrival
                continue
            _, name = ready[0]
            finish = clock + left[name] / intensity
            next_arrival = (
                pending[idx].arrival if idx < len(pending) else math.inf
            )
            until = min(finish, next_arrival)
            if until > clock + 1e-15:
                for piece_start, piece_end in original_pieces(clock, until):
                    slices.append(
                        ScheduledSlice(
                            job=name,
                            start=piece_start,
                            end=piece_end,
                            speed=intensity,
                        )
                    )
            left[name] -= (until - clock) * intensity
            clock = until
            if left[name] <= 1e-12:
                _heapq.heappop(ready)
        # Remove the scheduled jobs and collapse [t1, t2] out of time.
        scheduled = {j.name for j in inside}
        length = t2 - t1
        new_remaining: list[Job] = []
        for j in remaining:
            if j.name in scheduled:
                continue
            a, d = j.arrival, j.deadline
            a = a - length if a >= t2 else min(a, t1)
            d = d - length if d >= t2 else min(d, t1)
            new_remaining.append(
                Job(name=j.name, arrival=a, deadline=d, cycles=j.cycles)
            )
        remaining = new_remaining
        # Claim this round's window: its original image may be several
        # pieces (when it straddles earlier carves); keep `carved`
        # disjoint and sorted so the mapping stays correct.
        carved.extend(original_pieces(t1, t2))
        carved.sort()

    slices.sort(key=lambda s: s.start)

    # EDF inside a window can only shift slices, never break windows, but
    # be defensive: validate against the original job windows.
    for s in slices:
        a, d = original_windows[s.job]
        if s.start < a - 1e-6 or s.end > d + 1e-6:  # pragma: no cover
            raise AssertionError(
                f"YDS slice for {s.job} escaped its window: "
                f"[{s.start}, {s.end}] vs [{a}, {d}]"
            )
    return YdsSchedule(slices=tuple(slices), intensities=tuple(intensities))
