"""Pluggable array-kernel backends for the rejection solvers.

The DP, FPTAS, Pareto-frontier, branch-and-bound, greedy, and exhaustive
hot paths all run on a :class:`~repro.kernels.base.Kernel` — either the
pure-python reference (always available) or the optional NumPy backend,
which is differentially tested to produce bit-identical results
(``tests/kernels/``).

Selection, in precedence order:

1. an explicit :func:`set_kernel` / :func:`use_kernel` override,
2. the ``REPRO_KERNEL`` environment variable (``python`` | ``numpy`` |
   ``auto``),
3. ``auto``: NumPy when importable, the reference otherwise.

Requesting ``numpy`` when NumPy is not installed raises
:class:`KernelUnavailableError` — never a silent fallback; the CLI turns
it into a one-line error and exit code 2.  The ``repro --kernel`` flag
sets ``REPRO_KERNEL`` so worker processes inherit the choice.
"""

from __future__ import annotations

import contextlib
import os

from repro.kernels.base import FrontierStep, Kernel  # noqa: F401 - re-export

__all__ = [
    "FrontierStep",
    "Kernel",
    "KernelUnavailableError",
    "available_kernels",
    "get_kernel",
    "kernel_names",
    "set_kernel",
    "use_kernel",
]

#: Environment variable consulted when no explicit override is set.
ENV_VAR = "REPRO_KERNEL"

#: Names accepted by :func:`set_kernel` / ``REPRO_KERNEL`` / ``--kernel``.
KERNEL_CHOICES = ("auto", "python", "numpy")


class KernelUnavailableError(RuntimeError):
    """A kernel was requested by name but cannot be provided."""


#: Explicit override installed by :func:`set_kernel` (None = use env/auto).
_OVERRIDE: Kernel | None = None

#: Lazily-instantiated backend singletons.
_INSTANCES: dict[str, Kernel] = {}


def _import_numpy():
    """Import hook split out so tests can simulate a missing NumPy."""
    import numpy

    return numpy


def numpy_available() -> bool:
    """True when the NumPy backend can be constructed."""
    try:
        _import_numpy()
    except ImportError:
        return False
    return True


def kernel_names() -> tuple[str, ...]:
    """The names of the kernels available in this environment."""
    return ("python", "numpy") if numpy_available() else ("python",)


def _instantiate(name: str) -> Kernel:
    if name in _INSTANCES:
        return _INSTANCES[name]
    if name == "python":
        from repro.kernels.pyref import PythonKernel

        kernel: Kernel = PythonKernel()
    elif name == "numpy":
        try:
            _import_numpy()
        except ImportError as exc:
            raise KernelUnavailableError(
                "kernel 'numpy' requested but numpy is not importable "
                f"({exc}); install numpy or select the 'python' kernel"
            ) from None
        from repro.kernels.array import NumpyKernel

        kernel = NumpyKernel()
    else:
        raise KernelUnavailableError(
            f"unknown kernel {name!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    _INSTANCES[name] = kernel
    return kernel


def _resolve(name: str) -> Kernel:
    if name == "auto":
        return _instantiate("numpy" if numpy_available() else "python")
    return _instantiate(name)


def available_kernels() -> tuple[Kernel, ...]:
    """Instances of every kernel available in this environment."""
    return tuple(_instantiate(name) for name in kernel_names())


def get_kernel() -> Kernel:
    """The active kernel (override > ``REPRO_KERNEL`` > auto).

    Raises :class:`KernelUnavailableError` when the environment demands
    a backend that cannot be provided — requesting NumPy without NumPy
    must fail loudly, not silently degrade.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _resolve(os.environ.get(ENV_VAR, "auto") or "auto")


def set_kernel(name: str | None) -> Kernel | None:
    """Install an explicit kernel override (None clears it).

    Returns the installed kernel (or None when cleared).  ``"auto"``
    resolves immediately against the current environment.
    """
    global _OVERRIDE
    if name is None:
        _OVERRIDE = None
        return None
    _OVERRIDE = _resolve(name)
    return _OVERRIDE


@contextlib.contextmanager
def use_kernel(name: str):
    """Context manager pinning the active kernel within a block.

    Not thread-safe: the override is process-global, matching how the
    CLI, bench harness, and tests drive kernel selection.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = _resolve(name)
    try:
        yield _OVERRIDE
    finally:
        _OVERRIDE = previous
