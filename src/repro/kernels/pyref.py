"""Pure-python reference kernel.

The dependency-free backend every environment gets: plain lists,
``bytearray`` decision rows, and explicit loops that spell out the
floating-point operation order the NumPy backend must reproduce
(:mod:`repro.kernels.base` documents the contract).  It is the semantic
ground truth the differential test wall measures
:class:`repro.kernels.array.NumpyKernel` against.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.kernels.base import (
    FrontierStep,
    Kernel,
    improves,
    suffix_shed_cost,
)

_INF = math.inf


class PythonKernel(Kernel):
    """Reference implementation of the kernel interface (pure python)."""

    name = "python"

    # ------------------------------------------------------------------ #
    # Scoring and sweeps                                                 #
    # ------------------------------------------------------------------ #

    def fits_mask(self, loads: Sequence[float], capacity: float) -> list[bool]:
        return [self.fits(load, capacity) for load in loads]

    def cumsum(self, values: Sequence[float]) -> list[float]:
        out: list[float] = []
        acc = 0.0
        for v in values:
            acc = acc + v
            out.append(acc)
        return out

    def density_order(
        self, cycles: Sequence[float], penalties: Sequence[float]
    ) -> list[int]:
        densities = [p / c for p, c in zip(penalties, cycles)]
        return sorted(range(len(densities)), key=densities.__getitem__)

    def prefix_reject_count(
        self, cycles: Sequence[float], workload: float, capacity: float
    ) -> tuple[int, float]:
        if self.fits(workload, capacity):
            return 0, workload
        acc = 0.0
        for k, c in enumerate(cycles, start=1):
            acc = acc + c
            remaining = workload - acc
            if self.fits(remaining, capacity):
                return k, remaining
        return len(cycles), workload - acc

    def energy_table(
        self, energy_fn, workloads: Sequence[float]
    ) -> list[float]:
        energy = energy_fn.energy
        return [energy(w) for w in workloads]

    # ------------------------------------------------------------------ #
    # Greedy family                                                      #
    # ------------------------------------------------------------------ #

    def marginal_best(
        self,
        workload: float,
        cycles: Sequence[float],
        penalties: Sequence[float],
        energy_fn,
    ) -> int:
        energy = energy_fn.energy
        current = energy(workload)
        best = -1
        best_delta = 0.0
        for k, (c, p) in enumerate(zip(cycles, penalties)):
            saving = current - energy(max(workload - c, 0.0))
            delta = p - saving
            if improves(saving, p) and (best < 0 or delta < best_delta):
                best, best_delta = k, delta
        return best

    # ------------------------------------------------------------------ #
    # Dynamic programs                                                   #
    # ------------------------------------------------------------------ #

    def dp_init(self, size: int, fill: float) -> list[float]:
        row = [fill] * size
        row[0] = 0.0
        return row

    def dp_relax_min(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[list[float], bytearray]:
        size = len(row)
        out = [0.0] * size
        take = bytearray(size)
        for j in range(min(shift, size)):
            out[j] = row[j] + addend
        for j in range(shift, size):
            reject = row[j] + addend
            accept = row[j - shift]
            if accept < reject:
                out[j] = accept
                take[j] = 1
            else:
                out[j] = reject
        return out, take

    def dp_relax_max(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[list[float], bytearray]:
        size = len(row)
        out = list(row[: min(shift, size)])
        out += [0.0] * (size - len(out))
        take = bytearray(size)
        for j in range(shift, size):
            keep = row[j]
            reject = row[j - shift] + addend
            if reject > keep:
                out[j] = reject
                take[j] = 1
            else:
                out[j] = keep
        return out, take

    def best_workload_level(
        self, row: Sequence[float], quantum: float, capacity: float, energy_fn
    ) -> tuple[int, float]:
        energy = energy_fn.energy
        best = -1
        best_cost = _INF
        for w, value in enumerate(row):
            if not math.isfinite(value):
                continue
            cost = energy(min(w * quantum, capacity)) + value
            if cost < best_cost:
                best, best_cost = w, cost
        return best, best_cost

    def best_penalty_level(
        self,
        row: Sequence[float],
        total: float,
        capacity: float,
        energy_fn,
        price: float,
    ) -> tuple[int, float]:
        energy = energy_fn.energy
        best = -1
        best_cost = _INF
        for p, value in enumerate(row):
            if not math.isfinite(value):
                continue
            workload = total - value
            if not self.fits(workload, capacity):
                continue
            cost = energy(min(max(workload, 0.0), capacity)) + p * price
            if cost < best_cost:
                best, best_cost = p, cost
        return best, best_cost

    # ------------------------------------------------------------------ #
    # Pareto frontier                                                    #
    # ------------------------------------------------------------------ #

    def frontier_step(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        cycles: float,
        penalty: float,
        capacity: float,
    ) -> FrontierStep:
        # Candidate tuples: (workload, penalty, source index, accepted).
        candidates: list[tuple[float, float, int, bool]] = [
            (w, p + penalty, i, False)
            for i, (w, p) in enumerate(zip(workloads, penalties))
        ]
        for i, (w, p) in enumerate(zip(workloads, penalties)):
            grown = w + cycles
            if self.fits(grown, capacity):
                candidates.append((grown, p, i, True))
        candidates.sort(key=lambda c: (c[0], c[1]))  # stable: reject first
        out_w: list[float] = []
        out_p: list[float] = []
        out_src: list[int] = []
        out_acc: list[bool] = []
        for w, p, src, acc in candidates:
            if out_p and p >= out_p[-1]:
                continue
            out_w.append(w)
            out_p.append(p)
            out_src.append(src)
            out_acc.append(acc)
        return FrontierStep(
            workloads=out_w,
            penalties=out_p,
            sources=out_src,
            accepted=out_acc,
            candidates=len(candidates),
        )

    def frontier_best(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        energy = energy_fn.energy
        best = -1
        best_cost = _INF
        for i, (w, p) in enumerate(zip(workloads, penalties)):
            cost = energy(min(w, capacity)) + p
            if cost < best_cost:
                best, best_cost = i, cost
        return best, best_cost

    # ------------------------------------------------------------------ #
    # Exhaustive enumeration and branch-and-bound                        #
    # ------------------------------------------------------------------ #

    def subset_sums(self, values: Sequence[float]) -> list[float]:
        out = [0.0] * (1 << len(values))
        for i, v in enumerate(values):
            bit = 1 << i
            for mask in range(bit, bit << 1):
                out[mask] = out[mask ^ bit] + v
        return out

    def exhaustive_best(
        self,
        workloads: Sequence[float],
        accepted_penalties: Sequence[float],
        total_penalty: float,
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        energy = energy_fn.energy
        best = -1
        best_cost = _INF
        for mask, w in enumerate(workloads):
            if not self.fits(w, capacity):
                continue
            cost = energy(min(w, capacity)) + (
                total_penalty - accepted_penalties[mask]
            )
            if cost < best_cost:
                best, best_cost = mask, cost
        return best, best_cost

    def bound_breakpoint_min(
        self,
        cum_c: Sequence[float],
        cum_p: Sequence[float],
        densities: Sequence[float],
        start: int,
        base_workload: float,
        base_penalty: float,
        w_hi: float,
        suffix_total: float,
        capacity: float,
        energy_fn,
    ) -> float:
        energy = energy_fn.energy
        val = _INF
        offset = cum_c[start]
        for k in range(start, len(densities) + 1):
            w = suffix_total - (cum_c[k] - offset)
            if not 0.0 <= w <= w_hi + 1e-12:
                continue
            wc = min(w, w_hi)
            cost = (
                base_penalty
                + energy(min(base_workload + wc, capacity))
                + suffix_shed_cost(
                    cum_c, cum_p, densities, start, suffix_total - wc
                )
            )
            if cost < val:
                val = cost
        return val
