"""The array-kernel interface the rejection solvers run on.

A :class:`Kernel` bundles the array primitives behind the hot inner
loops of the REJECT-MIN solvers — DP row relaxation, Pareto-frontier
dominance filtering, prefix-capacity sweeps, penalty-density scoring,
energy-table evaluation, and the branch-and-bound shed-cost search.
Two backends implement it:

* :mod:`repro.kernels.pyref` — the pure-python reference; always
  available, dependency-free, and the semantic ground truth.
* :mod:`repro.kernels.array` — NumPy-vectorised rows; optional, and
  differentially tested to return **bit-identical** results.

Exact-equivalence contract
--------------------------
Every op is specified down to the order of floating-point operations, so
the two backends agree to the last ulp and solvers produce *identical*
accepted sets, costs, plans, and work counters on either one.  Two
consequences shape the interface:

* **Energy stays scalar.**  NumPy's elementwise ``**`` is not bit-equal
  to CPython's ``**`` (they disagree on ~5% of inputs by an ulp), so
  :meth:`Kernel.energy_table` evaluates ``energy_fn.energy`` per element
  in *both* backends.  The vectorised wins come from the table/frontier
  sweeps around those calls, which dominate the running time.
* **Sums are specified, not incidental.**  Reductions use strict
  left-to-right accumulation (:meth:`Kernel.cumsum` ==
  ``np.add.accumulate``), and derived quantities (remaining workload
  after ``k`` rejections, suffix shed costs) are defined as *one*
  subtraction against a cumulative sum rather than a chain of running
  subtractions, so both backends round identically.

Rows returned by DP ops are backend-native (``list`` vs ``ndarray``);
solvers must treat them as opaque indexable sequences.  Decision/take
bit rows support ``row[i]`` truth-testing (``bytearray`` vs bool
``ndarray``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import CAPACITY_RTOL

#: Relative tolerance for "strict" cost improvements; guards fp jitter.
#: (Shared with the greedy family — a rejection only counts as improving
#: when the energy saved beats the penalty by more than fp noise.)
IMPROVE_RTOL = 1e-12

#: Slack used when matching a rejected-cycles amount against the shed
#: breakpoints (mirrors the historical branch-and-bound tolerance).
SHED_ATOL = 1e-15


def improves(saving: float, penalty: float) -> bool:
    """True when rejecting (saving energy *saving* at *penalty*) helps."""
    return saving - penalty > IMPROVE_RTOL * max(abs(saving), abs(penalty), 1.0)


def suffix_shed_cost(
    cum_c: Sequence[float],
    cum_p: Sequence[float],
    densities: Sequence[float],
    start: int,
    rejected: float,
) -> float:
    """Cheapest penalty to shed *rejected* cycles from the suffix.

    The tasks are in density order; ``cum_c``/``cum_p`` are their global
    cycle/penalty prefix sums (length ``n + 1``, leading 0) and
    ``densities[k] = penalties[k] / cycles[k]``.  Shedding is fractional:
    whole tasks from ``start`` onward are rejected until the remainder
    fits inside one task, which is charged pro rata.

    This scalar form is shared verbatim by both kernels (it backs the
    golden-section objective in the branch-and-bound relaxation); the
    vectorised breakpoint sweep in
    :meth:`Kernel.bound_breakpoint_min` replays the same arithmetic
    elementwise.
    """
    if rejected <= 0.0:
        return 0.0
    n = len(densities)
    target = (rejected - SHED_ATOL) + cum_c[start]
    j = max(bisect_left(cum_c, target), start + 1)
    if j > n:
        return cum_p[n] - cum_p[start]
    k = j - 1
    return (cum_p[k] - cum_p[start]) + (
        rejected - (cum_c[k] - cum_c[start])
    ) * densities[k]


@dataclass(frozen=True)
class FrontierStep:
    """One dominance-filtered Pareto-frontier extension.

    ``workloads``/``penalties`` are the surviving states (workload
    ascending, penalty strictly descending); ``sources[i]`` is the index
    of state ``i``'s parent in the *previous* frontier and
    ``accepted[i]`` whether it accepted the task just processed.
    ``candidates`` counts the states examined before pruning (the
    ``states`` work counter of the solvers).
    """

    workloads: Sequence[float]
    penalties: Sequence[float]
    sources: Sequence[int]
    accepted: Sequence[bool]
    candidates: int

    def __len__(self) -> int:
        return len(self.workloads)


class Kernel(ABC):
    """Array primitives the rejection solvers' inner loops run on.

    See the module docstring for the exact-equivalence contract.  All
    capacity comparisons use the shared predicate
    ``load <= capacity * (1 + CAPACITY_RTOL)`` from
    :mod:`repro._validation`.
    """

    #: Backend identifier ("python", "numpy"); also what ``repro bench``
    #: and the run manifests record.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Scoring and sweeps                                                 #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def fits_mask(self, loads: Sequence[float], capacity: float) -> Sequence[bool]:
        """Elementwise shared-tolerance capacity predicate."""

    @abstractmethod
    def cumsum(self, values: Sequence[float]) -> Sequence[float]:
        """Strict left-to-right prefix sums (``out[i] = out[i-1] + v[i]``)."""

    def prefix_sums(self, values: Sequence[float]) -> Sequence[float]:
        """:meth:`cumsum` with a leading 0 (length ``n + 1``).

        The branch-and-bound shed-cost tables index these as
        ``cum[k] - cum[start]``.
        """
        cum = self.cumsum(values)
        return [0.0, *cum]

    @abstractmethod
    def density_order(
        self, cycles: Sequence[float], penalties: Sequence[float]
    ) -> list[int]:
        """Indices sorted by penalty density ``p/c`` ascending, stable."""

    @abstractmethod
    def prefix_reject_count(
        self, cycles: Sequence[float], workload: float, capacity: float
    ) -> tuple[int, float]:
        """Rejections (in order) needed before the workload fits.

        Returns ``(k, workload - cum[k])`` for the smallest ``k >= 0``
        such that ``workload - cum[k]`` fits the capacity (``cum[0] = 0``),
        or ``(len(cycles), workload - cum[-1])`` when even rejecting
        everything listed does not suffice.
        """

    @abstractmethod
    def energy_table(
        self, energy_fn, workloads: Sequence[float]
    ) -> Sequence[float]:
        """``energy_fn.energy`` at each workload (must all be feasible).

        Scalar per-element evaluation in both backends — see the module
        docstring for why this is *not* vectorised.
        """

    # ------------------------------------------------------------------ #
    # Greedy family                                                      #
    # ------------------------------------------------------------------ #

    def improving_prefix(
        self,
        workload: float,
        cycles: Sequence[float],
        penalties: Sequence[float],
        energy_fn,
    ) -> tuple[int, float]:
        """Longest improving rejection prefix of an ordered candidate list.

        With ``W_0 = workload`` and ``W_k = workload - cum[k]``, candidate
        ``k`` (0-based) improves when
        ``improves(g(max(W_k, 0)) - g(max(W_{k+1}, 0)), penalties[k])``;
        the scan stops at the first non-improving candidate.  Returns
        ``(count, W_count)``.

        The scan is inherently sequential (each decision conditions the
        next workload) and evaluates at most ``count + 2`` energies, so
        the lazy reference implementation is shared by both backends.
        """
        # float() casts keep np.float64 out of ``energy`` (whose ``**``
        # is not bit-equal to CPython's) when the cumsum is an ndarray.
        cum = self.cumsum(cycles)
        current = energy_fn.energy(max(float(workload), 0.0))
        count = 0
        for k in range(len(cycles)):
            after = energy_fn.energy(max(float(workload - cum[k]), 0.0))
            if not improves(current - after, float(penalties[k])):
                break
            count += 1
            current = after
        if count == 0:
            return 0, workload
        return count, float(workload - cum[count - 1])

    @abstractmethod
    def marginal_best(
        self,
        workload: float,
        cycles: Sequence[float],
        penalties: Sequence[float],
        energy_fn,
    ) -> int:
        """Position of the best improving marginal rejection, or -1.

        For each candidate ``k``: ``saving_k = g(W) - g(max(W - c_k, 0))``
        and ``delta_k = p_k - saving_k``.  Returns the first position
        minimising ``delta`` among candidates with
        ``improves(saving_k, p_k)`` (strict ``<`` keeps the earliest on
        exact ties), or -1 when no candidate improves.
        """

    # ------------------------------------------------------------------ #
    # Dynamic programs                                                   #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def dp_init(self, size: int, fill: float) -> Sequence[float]:
        """A DP row of *size* entries of *fill* with ``row[0] = 0.0``."""

    @abstractmethod
    def dp_relax_min(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[Sequence[float], Sequence[bool]]:
        """Min-relaxation step of the cycle-indexed DP.

        ``out[j] = min(row[j] + addend, row[j - shift])`` (the shifted
        term exists only for ``j >= shift``); ``take[j]`` is True when
        the shifted (accept) term is strictly smaller.
        """

    @abstractmethod
    def dp_relax_max(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[Sequence[float], Sequence[bool]]:
        """Max-relaxation step of the penalty-indexed DP.

        ``out[j] = max(row[j], row[j - shift] + addend)`` (the shifted
        term exists only for ``j >= shift``); ``take[j]`` is True when
        the shifted (reject) term is strictly greater.
        """

    @abstractmethod
    def best_workload_level(
        self, row: Sequence[float], quantum: float, capacity: float, energy_fn
    ) -> tuple[int, float]:
        """Cheapest level of a cycle-indexed DP row.

        Over finite entries ``w``: ``cost = g(min(w * quantum, capacity))
        + row[w]``; returns the first index attaining the minimum and its
        cost (``(-1, inf)`` when no entry is finite).
        """

    @abstractmethod
    def best_penalty_level(
        self,
        row: Sequence[float],
        total: float,
        capacity: float,
        energy_fn,
        price: float,
    ) -> tuple[int, float]:
        """Cheapest level of a penalty-indexed DP row.

        Over finite entries ``p`` whose accepted workload
        ``w = total - row[p]`` fits the capacity:
        ``cost = g(min(max(w, 0), capacity)) + p * price``; returns the
        first index attaining the minimum and its cost (``(-1, inf)``
        when no level is feasible).
        """

    # ------------------------------------------------------------------ #
    # Pareto frontier                                                    #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def frontier_step(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        cycles: float,
        penalty: float,
        capacity: float,
    ) -> FrontierStep:
        """Extend a frontier by one task and prune dominated states.

        Candidates are the reject branch ``(w_i, p_i + penalty)`` for
        every state, followed by the accept branch ``(w_i + cycles, p_i)``
        for states whose accept workload fits.  They are stably sorted by
        ``(w, p)`` (reject-branch first on full ties) and a candidate
        survives iff its penalty is strictly below every earlier
        survivor's.
        """

    @abstractmethod
    def frontier_best(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        """First index minimising ``g(min(w, capacity)) + p`` and its cost."""

    # ------------------------------------------------------------------ #
    # Exhaustive enumeration and branch-and-bound                        #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def subset_sums(self, values: Sequence[float]) -> Sequence[float]:
        """Sums of all ``2**n`` subsets by iterative doubling.

        ``out[mask] = out[mask ^ lowbit] + values[bit(lowbit)]`` — the
        exact accumulation order of the doubling construction, identical
        in both backends.
        """

    @abstractmethod
    def exhaustive_best(
        self,
        workloads: Sequence[float],
        accepted_penalties: Sequence[float],
        total_penalty: float,
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        """Cheapest feasible subset of the exhaustive enumeration.

        Over masks whose workload fits the capacity:
        ``cost = g(min(w, capacity)) + (total_penalty -
        accepted_penalties[mask])``; returns the first mask attaining the
        minimum and its cost.
        """

    @abstractmethod
    def bound_breakpoint_min(
        self,
        cum_c: Sequence[float],
        cum_p: Sequence[float],
        densities: Sequence[float],
        start: int,
        base_workload: float,
        base_penalty: float,
        w_hi: float,
        suffix_total: float,
        capacity: float,
        energy_fn,
    ) -> float:
        """Minimum of the fractional bound over its shed breakpoints.

        For each ``k`` in ``[start, n]`` with
        ``w_k = suffix_total - (cum_c[k] - cum_c[start])`` and
        ``0 <= w_k <= w_hi + 1e-12``, evaluates (at ``wc = min(w_k,
        w_hi)``)::

            base_penalty + g(min(base_workload + wc, capacity))
                         + suffix_shed_cost(..., suffix_total - wc)

        and returns the minimum (``inf`` if no breakpoint qualifies,
        which cannot happen: ``k = n`` gives ``w = 0``).
        """

    # ------------------------------------------------------------------ #
    # Shared scalar helpers                                              #
    # ------------------------------------------------------------------ #

    @staticmethod
    def fits(load: float, capacity: float) -> bool:
        """The shared scalar capacity predicate."""
        return load <= capacity * (1 + CAPACITY_RTOL)
