"""``repro bench`` — kernel throughput benchmark (python vs numpy).

Runs a seeded stream of random REJECT-MIN instances through each
rejection solver on every available array kernel and writes the
throughput table as ``BENCH_kernels.json``:

* one **cell** per (solver, n, kernel): instances solved, total wall
  seconds, instances/second, the aggregated :mod:`repro.obs` solver
  counters, and a cost checksum (the summed solution costs — bit-equal
  across kernels, so two cells of the same (solver, n) cross-check the
  differential contract on real timing runs);
* solver/size combinations that would be superquadratic are recorded as
  explicit ``skipped`` cells with the reason — never silently dropped;
* the header pins the schema version, seed, code fingerprint, and the
  kernels available in the environment.

Instance generation uses only the stdlib ``random`` module, so the
benchmark (like the solvers) runs in NumPy-free environments; there it
simply produces python-kernel cells only.

The file is written atomically (temp file + rename), mirroring the
result cache and run manifests.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from random import Random

from repro.core.rejection import (
    RejectionProblem,
    branch_and_bound,
    dp_cycles,
    dp_penalty,
    exhaustive,
    fptas,
    greedy_density,
    greedy_marginal,
    pareto_exact,
)
from repro.energy import ContinuousEnergyFunction
from repro.kernels import kernel_names, use_kernel
from repro.obs import counters as obs_counters
from repro.power import xscale_power_model
from repro.tasks.model import FrameTask, FrameTaskSet

__all__ = ["BENCH_SOLVERS", "SCHEMA_VERSION", "run_bench"]

#: Bump on any change to the BENCH_kernels.json layout.
SCHEMA_VERSION = 1

#: Instance sizes of the full run (paper-scale trajectory).
SIZES = (100, 1_000, 10_000)

#: Instance sizes of ``--smoke`` (CI: seconds, not minutes).
SMOKE_SIZES = (20, 50)

#: Instances per cell, by size band (fixed counts keep runs with the
#: same seed byte-comparable; a time-budgeted loop would not be).
def _repeats(n: int, smoke: bool) -> int:
    if smoke:
        return 2
    if n <= 100:
        return 10
    if n <= 1_000:
        return 3
    return 1

#: DP table width target: dp_cycles quantises the capacity onto this
#: many grid units, and the fptas eps is scaled to hold roughly this
#: scaled-table width, so the n-trajectory measures row *throughput*
#: (cells/second), not an exploding table.
_DP_WIDTH = 2_000


def _fptas_eps(n: int) -> float:
    """Accuracy parameter per size: holds the scaled table width near
    :data:`_DP_WIDTH` (the bench measures kernel throughput, not
    approximation quality — at n=10^4 this eps is deliberately coarse).
    """
    return max(0.05, n / _DP_WIDTH)


#: The benchmarked solvers: name -> (runner, size cap, cap reason).
#: Caps mark solver/size combinations whose *algorithmic* cost (not the
#: kernel's) is superquadratic; they become explicit skipped cells.
BENCH_SOLVERS: dict = {
    "greedy_density": (
        lambda p, n: greedy_density(p),
        None,
        "",
    ),
    "greedy_marginal": (
        lambda p, n: greedy_marginal(p),
        1_000,
        "O(n^2) marginal evaluations",
    ),
    "dp_cycles": (
        lambda p, n: dp_cycles(
            p, quantum=p.capacity / _DP_WIDTH, round_cycles=True
        ),
        None,
        "",
    ),
    "dp_penalty": (
        lambda p, n: dp_penalty(p, quantum=_PENALTY_QUANTUM),
        1_000,
        "table width grows as sum(penalties)/quantum ~ n, cells ~ n^2",
    ),
    "fptas": (
        # Seed pinned to the linear-time heuristic: the default seed runs
        # greedy_marginal, whose O(n^2) scalar energy evaluations would
        # dominate the cell and hide the scaled DP the kernel accelerates.
        lambda p, n: fptas(
            p, eps=_fptas_eps(n), seed_solution=greedy_density(p)
        ),
        None,
        "",
    ),
    "pareto_exact": (
        lambda p, n: pareto_exact(p),
        300,
        "frontier size is instance-exponential in the worst case",
    ),
    "branch_and_bound": (
        lambda p, n: branch_and_bound(p),
        20,
        "search tree is exponential beyond exhaustive range",
    ),
    "exhaustive": (
        lambda p, n: exhaustive(p),
        16,
        "2^n subset enumeration",
    ),
}

#: Penalties are generated as integer multiples of this quantum so the
#: penalty-indexed DP applies without rounding; the total penalty mass
#: is ~7, so the dp_penalty table is ~7000 levels wide at every n.
_PENALTY_QUANTUM = 1e-3


def _instance(solver: str, n: int, seed: int, rep: int) -> RejectionProblem:
    """One deterministic random instance (stdlib RNG only).

    The stream is keyed on (seed, solver, n, rep) so cells never share
    instances and the same CLI seed reproduces the same file modulo
    timings.
    """
    rng = Random(f"{seed}:{solver}:{n}:{rep}")
    energy_fn = ContinuousEnergyFunction(xscale_power_model(), deadline=1.0)
    capacity = energy_fn.max_workload
    load = 1.2  # mild overload: forced rejections + improving rejections
    mean_cycles = load * capacity / n
    tasks = []
    for i in range(n):
        cycles = mean_cycles * rng.uniform(0.4, 1.6)
        # Penalty near the task's marginal energy at full load (~4.6 W/u
        # for the XScale model), in integer quanta: cheap enough that
        # rejection is often worth it, dear enough that it often is not.
        marginal = 4.6 * cycles
        penalty = (
            round(marginal * rng.uniform(0.3, 2.2) / _PENALTY_QUANTUM)
            * _PENALTY_QUANTUM
        )
        tasks.append(FrameTask(name=f"t{i}", cycles=cycles, penalty=penalty))
    return RejectionProblem(tasks=FrameTaskSet(tasks), energy_fn=energy_fn)


def _bench_cell(solver: str, n: int, seed: int, smoke: bool) -> dict:
    """Time one (solver, n) cell on the *active* kernel."""
    runner, _, _ = BENCH_SOLVERS[solver]
    reps = _repeats(n, smoke)
    problems = [_instance(solver, n, seed, rep) for rep in range(reps)]
    cost_total = 0.0
    with obs_counters.counting() as registry:
        t0 = time.perf_counter()
        for problem in problems:
            cost_total += runner(problem, n).cost
        wall = time.perf_counter() - t0
    return {
        "instances": reps,
        "wall_seconds": wall,
        "instances_per_sec": reps / wall if wall > 0 else float("inf"),
        "cost_total": f"{cost_total:.17g}",  # bit-exact cross-kernel check
        "counters": registry.snapshot(),
    }


def run_bench(
    *,
    seed: int = 0,
    out: Path | str = "BENCH_kernels.json",
    smoke: bool = False,
    solvers: list[str] | None = None,
    log=lambda line: None,
) -> tuple[Path, list[dict]]:
    """Run the full benchmark matrix and atomically write *out*.

    Returns ``(path, results)`` where *results* is the list of cell
    dicts (including skipped cells).
    """
    sizes = SMOKE_SIZES if smoke else SIZES
    names = list(solvers) if solvers else list(BENCH_SOLVERS)
    kernels = kernel_names()
    results: list[dict] = []
    for solver in names:
        _, cap, reason = BENCH_SOLVERS[solver]
        for kernel in kernels:
            measured: set[int] = set()
            for n in sizes:
                bench_n = min(n, cap) if cap is not None else n
                if bench_n != n:
                    # Explicit, not silent: the requested size is
                    # recorded as skipped and the cell re-pointed at the
                    # solver's cap (measured once per kernel).
                    results.append(
                        {
                            "solver": solver,
                            "n": n,
                            "kernel": kernel,
                            "skipped": True,
                            "capped_to": bench_n,
                            "reason": reason,
                        }
                    )
                if bench_n in measured:
                    continue
                measured.add(bench_n)
                log(f"bench: {solver} n={bench_n} kernel={kernel} ...")
                cell = {"solver": solver, "n": bench_n, "kernel": kernel}
                with use_kernel(kernel):
                    cell.update(_bench_cell(solver, bench_n, seed, smoke))
                if solver == "fptas":
                    cell["eps"] = _fptas_eps(bench_n)
                results.append(cell)
    payload = {
        "schema": SCHEMA_VERSION,
        "seed": seed,
        "smoke": smoke,
        "kernels": list(kernels),
        "sizes": list(sizes),
        "solvers": names,
        "python": sys.version.split()[0],
        "code": _code_fingerprint(),
        "created": time.time(),
        "results": results,
    }
    path = Path(out)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path, results


def _code_fingerprint() -> str:
    """The runner's source fingerprint (ties a bench file to the code)."""
    from repro.runner.cache import code_fingerprint

    return code_fingerprint()
