"""NumPy array kernel.

Vectorises the row/frontier/sweep primitives of the kernel interface
while reproducing the pure-python reference bit for bit (the contract in
:mod:`repro.kernels.base`):

* reductions use ``np.add.accumulate`` / elementwise float64 ops, which
  round exactly like the reference's left-to-right loops;
* stable sorts (``np.lexsort`` / ``kind="stable"``) replicate the
  reference's tie-breaking;
* energy evaluation stays scalar per element (NumPy's elementwise ``**``
  is not bit-equal to CPython's), batched only around the calls.

This module must only be imported via :func:`repro.kernels.get_kernel`,
which guards on NumPy availability.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import CAPACITY_RTOL
from repro.kernels.base import (
    IMPROVE_RTOL,
    SHED_ATOL,
    FrontierStep,
    Kernel,
    improves,
    suffix_shed_cost,
)


def _as_array(values: Sequence[float]) -> np.ndarray:
    if isinstance(values, np.ndarray) and values.dtype == np.float64:
        return values
    return np.asarray(values, dtype=np.float64)


class NumpyKernel(Kernel):
    """NumPy-vectorised implementation of the kernel interface."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    # Scoring and sweeps                                                 #
    # ------------------------------------------------------------------ #

    def fits_mask(self, loads: Sequence[float], capacity: float) -> np.ndarray:
        return _as_array(loads) <= capacity * (1 + CAPACITY_RTOL)

    def cumsum(self, values: Sequence[float]) -> np.ndarray:
        return np.add.accumulate(_as_array(values))

    def prefix_sums(self, values: Sequence[float]) -> np.ndarray:
        arr = _as_array(values)
        out = np.empty(len(arr) + 1)
        out[0] = 0.0
        np.add.accumulate(arr, out=out[1:])
        return out

    def density_order(
        self, cycles: Sequence[float], penalties: Sequence[float]
    ) -> list[int]:
        densities = _as_array(penalties) / _as_array(cycles)
        return [int(i) for i in np.argsort(densities, kind="stable")]

    def prefix_reject_count(
        self, cycles: Sequence[float], workload: float, capacity: float
    ) -> tuple[int, float]:
        bound = capacity * (1 + CAPACITY_RTOL)
        if workload <= bound:
            return 0, workload
        remaining = workload - self.cumsum(cycles)
        hits = np.flatnonzero(remaining <= bound)
        if len(hits) == 0:
            last = float(remaining[-1]) if len(remaining) else workload
            return len(cycles), last
        k = int(hits[0])
        return k + 1, float(remaining[k])

    def energy_table(
        self, energy_fn, workloads: Sequence[float]
    ) -> np.ndarray:
        # Scalar per element on purpose: vectorised ``**`` is not
        # bit-equal to CPython's (see repro.kernels.base).
        energy = energy_fn.energy
        out = np.empty(len(workloads))
        for i, w in enumerate(workloads):
            out[i] = energy(float(w))
        return out

    # ------------------------------------------------------------------ #
    # Greedy family                                                      #
    # ------------------------------------------------------------------ #

    def marginal_best(
        self,
        workload: float,
        cycles: Sequence[float],
        penalties: Sequence[float],
        energy_fn,
    ) -> int:
        if len(cycles) == 0:
            return -1
        current = energy_fn.energy(workload)
        shrunk = np.maximum(workload - _as_array(cycles), 0.0)
        savings = current - self.energy_table(energy_fn, shrunk)
        pen = _as_array(penalties)
        deltas = pen - savings
        improving = (savings - pen) > IMPROVE_RTOL * np.maximum.reduce(
            [np.abs(savings), np.abs(pen), np.ones_like(pen)]
        )
        if not improving.any():
            return -1
        masked = np.where(improving, deltas, np.inf)
        return int(np.argmin(masked))

    # ------------------------------------------------------------------ #
    # Dynamic programs                                                   #
    # ------------------------------------------------------------------ #

    def dp_init(self, size: int, fill: float) -> np.ndarray:
        row = np.full(size, fill)
        row[0] = 0.0
        return row

    def dp_relax_min(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[np.ndarray, np.ndarray]:
        arr = _as_array(row)
        reject = arr + addend
        accept = np.full_like(arr, np.inf)
        if shift <= len(arr):
            accept[shift:] = arr[: len(arr) - shift]
        take = accept < reject
        return np.where(take, accept, reject), take

    def dp_relax_max(
        self, row: Sequence[float], shift: int, addend: float
    ) -> tuple[np.ndarray, np.ndarray]:
        arr = _as_array(row)
        reject = np.full_like(arr, -np.inf)
        if shift <= len(arr):
            reject[shift:] = arr[: len(arr) - shift] + addend
        take = reject > arr
        return np.where(take, reject, arr), take

    def best_workload_level(
        self, row: Sequence[float], quantum: float, capacity: float, energy_fn
    ) -> tuple[int, float]:
        arr = _as_array(row)
        finite = np.isfinite(arr)
        if not finite.any():
            return -1, np.inf
        levels = np.flatnonzero(finite)
        workloads = np.minimum(levels * quantum, capacity)
        costs = self.energy_table(energy_fn, workloads) + arr[levels]
        best = int(np.argmin(costs))
        return int(levels[best]), float(costs[best])

    def best_penalty_level(
        self,
        row: Sequence[float],
        total: float,
        capacity: float,
        energy_fn,
        price: float,
    ) -> tuple[int, float]:
        arr = _as_array(row)
        workloads = total - arr
        feasible = np.isfinite(arr) & (
            workloads <= capacity * (1 + CAPACITY_RTOL)
        )
        if not feasible.any():
            return -1, np.inf
        levels = np.flatnonzero(feasible)
        clamped = np.minimum(np.maximum(workloads[levels], 0.0), capacity)
        costs = self.energy_table(energy_fn, clamped) + levels * price
        best = int(np.argmin(costs))
        return int(levels[best]), float(costs[best])

    # ------------------------------------------------------------------ #
    # Pareto frontier                                                    #
    # ------------------------------------------------------------------ #

    def frontier_step(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        cycles: float,
        penalty: float,
        capacity: float,
    ) -> FrontierStep:
        w = _as_array(workloads)
        p = _as_array(penalties)
        grown = w + cycles
        ok = grown <= capacity * (1 + CAPACITY_RTOL)
        src_all = np.arange(len(w))
        # Reject candidates first, then the surviving accept candidates:
        # the stable lexsort keeps that order on full (w, p) ties, which
        # is exactly the reference merge's reject-branch preference.
        cand_w = np.concatenate([w, grown[ok]])
        cand_p = np.concatenate([p + penalty, p[ok]])
        cand_src = np.concatenate([src_all, src_all[ok]])
        cand_acc = np.concatenate(
            [np.zeros(len(w), dtype=bool), np.ones(int(ok.sum()), dtype=bool)]
        )
        order = np.lexsort((cand_p, cand_w))
        sp = cand_p[order]
        # A candidate survives iff its penalty is strictly below every
        # earlier survivor's; since survivors' penalties are strictly
        # decreasing, "every earlier survivor" == the running prefix min.
        keep = np.empty(len(sp), dtype=bool)
        if len(sp):
            keep[0] = True
            np.less(sp[1:], np.minimum.accumulate(sp)[:-1], out=keep[1:])
        kept = order[keep]
        return FrontierStep(
            workloads=cand_w[kept],
            penalties=cand_p[kept],
            sources=cand_src[kept],
            accepted=cand_acc[kept],
            candidates=len(cand_w),
        )

    def frontier_best(
        self,
        workloads: Sequence[float],
        penalties: Sequence[float],
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        w = np.minimum(_as_array(workloads), capacity)
        costs = self.energy_table(energy_fn, w) + _as_array(penalties)
        if len(costs) == 0:
            return -1, np.inf
        best = int(np.argmin(costs))
        return best, float(costs[best])

    # ------------------------------------------------------------------ #
    # Exhaustive enumeration and branch-and-bound                        #
    # ------------------------------------------------------------------ #

    def subset_sums(self, values: Sequence[float]) -> np.ndarray:
        out = np.zeros(1 << len(values))
        for i, v in enumerate(values):
            bit = 1 << i
            out[bit : bit << 1] = out[:bit] + v
        return out

    def exhaustive_best(
        self,
        workloads: Sequence[float],
        accepted_penalties: Sequence[float],
        total_penalty: float,
        capacity: float,
        energy_fn,
    ) -> tuple[int, float]:
        w = _as_array(workloads)
        feasible = w <= capacity * (1 + CAPACITY_RTOL)
        if not feasible.any():
            return -1, np.inf
        masks = np.flatnonzero(feasible)
        clamped = np.minimum(w[masks], capacity)
        costs = self.energy_table(energy_fn, clamped) + (
            total_penalty - _as_array(accepted_penalties)[masks]
        )
        best = int(np.argmin(costs))
        return int(masks[best]), float(costs[best])

    def bound_breakpoint_min(
        self,
        cum_c: Sequence[float],
        cum_p: Sequence[float],
        densities: Sequence[float],
        start: int,
        base_workload: float,
        base_penalty: float,
        w_hi: float,
        suffix_total: float,
        capacity: float,
        energy_fn,
    ) -> float:
        cc = _as_array(cum_c)
        cp = _as_array(cum_p)
        dens = _as_array(densities)
        n = len(dens)
        offset = cc[start]
        w = suffix_total - (cc[start:] - offset)
        ok = (w >= 0.0) & (w <= w_hi + 1e-12)
        if not ok.any():  # pragma: no cover - k = n always yields w = 0
            return np.inf
        wc = np.minimum(w[ok], w_hi)
        rejected = suffix_total - wc
        # Vectorised suffix_shed_cost (same arithmetic, elementwise).
        shed = np.zeros(len(rejected))
        positive = rejected > 0.0
        if positive.any():
            rej = rejected[positive]
            target = (rej - SHED_ATOL) + offset
            j = np.maximum(np.searchsorted(cc, target, side="left"), start + 1)
            full = j > n
            k = np.minimum(j, n) - 1
            partial = (cp[k] - cp[start]) + (rej - (cc[k] - offset)) * dens[k]
            shed[positive] = np.where(full, cp[n] - cp[start], partial)
        energies = self.energy_table(
            energy_fn, np.minimum(base_workload + wc, capacity)
        )
        return float(np.min(base_penalty + energies + shed))


# Re-exported for symmetry with the reference backend's helpers.
__all__ = ["NumpyKernel", "improves", "suffix_shed_cost"]
