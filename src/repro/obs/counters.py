"""Thread-safe solver counter registry.

Algorithms report *what they did* — branch-and-bound nodes, DP cells,
FPTAS scaling, greedy sweeps, Pareto frontier sizes — as named counters.
The hot loops keep plain local integers (no locking, no lookups) and
flush once per call through :func:`emit`/:func:`add`, which are no-ops
unless a registry has been installed with :func:`counting`.

Counter names are ``<algorithm>.<metric>`` (``branch_and_bound.nodes``,
``fptas.states``); every instrumented solver also bumps
``<algorithm>.calls`` so sums can be turned into per-call means.

The registry is a plain summing map behind a lock, so it is safe to
share between threads; across *process* boundaries it cannot be shared,
so :mod:`repro.runner.pool` installs a fresh registry around each trial,
ships its :meth:`Counters.snapshot` back with the trial result, and
merges the payloads in seed order — which is why ``--jobs 4`` and
``--jobs 1`` aggregate to identical totals (addition replays in the
same order).
"""

from __future__ import annotations

import threading

__all__ = ["Counters", "active", "add", "counting", "emit"]


class Counters:
    """A named summing registry (thread-safe)."""

    __slots__ = ("_lock", "_data")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        """Add *value* (default 1) to counter *name*."""
        with self._lock:
            self._data[name] = self._data.get(name, 0) + value

    def merge(self, mapping: dict) -> None:
        """Add every counter of *mapping* into this registry."""
        with self._lock:
            for name, value in mapping.items():
                self._data[name] = self._data.get(name, 0) + value

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of the current totals."""
        with self._lock:
            return dict(self._data)

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._data)


#: The installed registry; ``None`` (the default) disables counting.
_ACTIVE: Counters | None = None


def active() -> Counters | None:
    """The registry installed by the innermost :func:`counting`."""
    return _ACTIVE


class _counting:
    """Context manager installing a registry as the counter sink."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: Counters | None) -> None:
        self._registry = registry if registry is not None else Counters()

    def __enter__(self) -> Counters:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._registry
        return self._registry

    def __exit__(self, *exc) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def counting(registry: Counters | None = None) -> _counting:
    """``with counting() as reg:`` — collect counters for the body.

    Installs *registry* (a fresh one when ``None``) as the active sink;
    the previous sink is restored on exit, so contexts nest (innermost
    wins — emits are never double-counted).
    """
    return _counting(registry)


def add(name: str, value: float = 1) -> None:
    """Bump one counter in the active registry (no-op when none)."""
    registry = _ACTIVE
    if registry is not None:
        registry.add(name, value)


def emit(prefix: str, **values: float) -> None:
    """Flush a solver's local tallies as ``<prefix>.<key>`` counters.

    No-op when no registry is installed — solvers call this exactly once
    per invocation, so the disabled-path cost is one ``is None`` check.
    """
    registry = _ACTIVE
    if registry is not None:
        for key, value in values.items():
            registry.add(f"{prefix}.{key}", value)
