"""Span-based wall-time tracing.

The library's hot paths (solvers, trial functions, the verify harness)
mark their phases with :func:`span`::

    with span("solve.branch_and_bound", n=problem.n):
        ...

or decorate whole functions with :func:`traced`.  When no sink is
installed — the default — ``span()`` returns a shared no-op context
manager: the cost is one module-global read plus the ``with`` protocol,
and **nothing is allocated or recorded** (the guard in
``benchmarks/test_obs.py`` pins this).  Installing a sink with
:func:`tracing` turns every span into one JSON-ready record::

    {"name": ..., "t0": <epoch s>, "dur": <s>, "depth": <nesting>,
     "pid": <os.getpid()>, "attrs": {...}}

Sinks
-----

:class:`JsonlSink`
    Appends one JSON line per record to a file (lock-protected, so
    threads may share it).  This is what ``repro run --trace-out``
    installs.
:class:`MemorySink`
    Collects records in a list.  Worker processes use it to capture
    spans that :mod:`repro.runner.pool` ships back to the parent, where
    they are re-emitted into the parent's sink in seed order.

Nesting depth is tracked per thread, so concurrent threads sharing one
sink never corrupt each other's span stacks.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "JsonlSink",
    "MemorySink",
    "active_sink",
    "emit_record",
    "span",
    "traced",
    "tracing",
]

#: The installed sink; ``None`` (the default) disables tracing entirely.
_SINK = None

_DEPTH = threading.local()


class JsonlSink:
    """Append span records to *path* as JSON lines (thread-safe)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a")
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        """Write one record as a JSON line."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySink:
    """Collect span records in memory (``.records``)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append one record."""
        self.records.append(record)

    def drain(self) -> list[dict]:
        """Return the collected records and clear the buffer."""
        out, self.records = self.records, []
        return out


def active_sink():
    """The installed sink, or ``None`` when tracing is disabled."""
    return _SINK


def emit_record(record: dict) -> None:
    """Emit a pre-built record into the active sink (no-op when none).

    Used by the runner to re-emit spans captured in worker processes and
    to write the synthetic per-trial spans whose durations must match
    the manifest's trial timings exactly.
    """
    sink = _SINK
    if sink is not None:
        sink.emit(record)


class _tracing:
    """Context manager installing *sink* as the active span sink."""

    __slots__ = ("_sink", "_previous")

    def __init__(self, sink) -> None:
        self._sink = sink

    def __enter__(self):
        global _SINK
        self._previous = _SINK
        _SINK = self._sink
        return self._sink

    def __exit__(self, *exc) -> bool:
        global _SINK
        _SINK = self._previous
        return False


def tracing(sink) -> _tracing:
    """``with tracing(sink):`` — record spans into *sink* for the body."""
    return _tracing(sink)


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: records one wall-time measurement on exit."""

    __slots__ = ("name", "attrs", "_t0", "_start", "_depth")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._depth = getattr(_DEPTH, "value", 0)
        _DEPTH.value = self._depth + 1
        self._t0 = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter() - self._start
        _DEPTH.value = self._depth
        sink = _SINK
        if sink is not None:  # sink may have been uninstalled mid-span
            sink.emit(
                {
                    "name": self.name,
                    "t0": self._t0,
                    "dur": dur,
                    "depth": self._depth,
                    "pid": os.getpid(),
                    "attrs": self.attrs,
                }
            )
        return False


def span(name: str, **attrs):
    """A context manager timing one named phase.

    With no sink installed this returns a shared no-op object and
    records nothing; with a sink it measures wall time and emits one
    record (``attrs`` ride along verbatim — keep them JSON-safe).
    """
    if _SINK is None:
        return _NOOP
    return _Span(name, attrs)


def traced(fn=None, *, name: str | None = None):
    """Decorator form of :func:`span`.

    ``@traced`` uses the function's qualified name; ``@traced(name=...)``
    overrides it.  When tracing is disabled the wrapper adds a single
    ``is None`` check on top of the call.
    """

    def decorate(func):
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if _SINK is None:
                return func(*args, **kwargs)
            with _Span(label, {}):
                return func(*args, **kwargs)

        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
