"""The ``repro stats`` report: digest a trace or a run manifest.

Accepts either artifact the observability layer produces —

* a **trace** (``repro run --trace-out trace.jsonl``): JSON-lines span
  records, one per timed phase, including one synthetic ``trial`` span
  per executed trial whose duration equals the manifest's recorded
  trial time;
* a **manifest** (``results/manifests/<experiment>-<key12>.json``): one
  JSON object per run.

and renders per-phase wall-time breakdowns, the top-k slowest trials,
and counter totals.  The per-trial totals printed from a trace and from
the matching manifest agree exactly: both sides record the same
in-worker measurement.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import MANIFEST_FORMAT, load_manifest

__all__ = ["load_stats_source", "stats_report"]


def load_stats_source(path: str | Path) -> tuple[str, object]:
    """Classify *path* as ``("manifest", dict)`` or ``("trace", records)``.

    A manifest is a single JSON object with the manifest format marker;
    anything parseable as JSON lines of span records is a trace.  Raises
    ``ValueError`` for everything else.
    """
    path = Path(path)
    text = path.read_text()
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict):
        if whole.get("format") == MANIFEST_FORMAT:
            return "manifest", load_manifest(path)
        if "name" in whole and "dur" in whole:  # single-record trace
            return "trace", [whole]
        raise ValueError(f"{path} is neither a run manifest nor a trace")
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSON span record") from exc
        if not isinstance(record, dict) or "name" not in record or "dur" not in record:
            raise ValueError(
                f"{path}:{lineno}: span records need 'name' and 'dur' fields"
            )
        records.append(record)
    if not records:
        raise ValueError(f"{path} contains no span records")
    return "trace", records


def _phase_table(durations: dict[str, list[float]]) -> list[str]:
    """Aligned count/total/mean/max rows, longest total first."""
    rows = [
        (name, len(ds), sum(ds), sum(ds) / len(ds), max(ds))
        for name, ds in durations.items()
    ]
    rows.sort(key=lambda r: r[2], reverse=True)
    width = max((len(r[0]) for r in rows), default=5)
    lines = [
        f"{'phase'.ljust(width)}  {'count':>7}  {'total s':>10}  "
        f"{'mean s':>10}  {'max s':>10}"
    ]
    for name, count, total, mean, peak in rows:
        lines.append(
            f"{name.ljust(width)}  {count:>7}  {total:>10.4f}  "
            f"{mean:>10.6f}  {peak:>10.6f}"
        )
    return lines


def _counter_lines(counters: dict) -> list[str]:
    width = max((len(name) for name in counters), default=7)
    lines = []
    for name in sorted(counters):
        value = counters[name]
        text = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name.ljust(width)}  {text}")
    return lines


def _span_label(record: dict) -> str:
    """Grouping key: trial spans group by their trial label."""
    if record["name"] == "trial":
        label = record.get("attrs", {}).get("label")
        return f"trial[{label}]" if label else "trial"
    return record["name"]


def _trace_report(records: list[dict], top: int) -> str:
    durations: dict[str, list[float]] = {}
    for record in records:
        durations.setdefault(_span_label(record), []).append(float(record["dur"]))
    trials = [r for r in records if r["name"] == "trial"]
    lines = [f"-- stats: trace ({len(records)} spans) --", ""]
    lines += _phase_table(durations)
    if trials:
        total = sum(float(r["dur"]) for r in trials)
        lines += [
            "",
            f"trials: {len(trials)}, trial time (sum) {total:.4f} s",
            f"top {min(top, len(trials))} slowest trials:",
        ]
        for record in sorted(trials, key=lambda r: r["dur"], reverse=True)[:top]:
            label = record.get("attrs", {}).get("label", "trial")
            lines.append(f"  {float(record['dur']):.6f} s  {label}")
    return "\n".join(lines)


def _manifest_report(data: dict, top: int) -> str:
    trial_seconds = [(label, float(dur)) for label, dur in data["trial_seconds"]]
    lines = [
        f"-- stats: manifest {data['experiment']} --",
        f"key           : {data['key']}",
        f"code          : {data.get('code', '?')[:12]}",
        f"params        : {json.dumps(data.get('params', {}), sort_keys=True)}",
        f"seed          : {data.get('seed')}",
        f"cache         : {data['cache']}",
        f"jobs          : {data.get('jobs', 1)}",
        f"wall time     : {float(data.get('wall_seconds', 0.0)):.4f} s",
        f"trials        : {data.get('trials', len(trial_seconds))}",
    ]
    if trial_seconds:
        durations: dict[str, list[float]] = {}
        for label, dur in trial_seconds:
            durations.setdefault(label, []).append(dur)
        total = sum(dur for _, dur in trial_seconds)
        lines += [f"trial time    : {total:.4f} s (sum)", ""]
        lines += _phase_table(durations)
        lines += ["", f"top {min(top, len(trial_seconds))} slowest trials:"]
        ranked = sorted(trial_seconds, key=lambda pair: pair[1], reverse=True)
        for label, dur in ranked[:top]:
            lines.append(f"  {dur:.6f} s  {label}")
    counters = data.get("counters") or {}
    if counters:
        lines += ["", "counter totals:"]
        lines += [f"  {line}" for line in _counter_lines(counters)]
    return "\n".join(lines)


def stats_report(path: str | Path, *, top: int = 5) -> str:
    """Render the stats report for a trace JSONL or manifest JSON file."""
    kind, data = load_stats_source(path)
    if kind == "manifest":
        return _manifest_report(data, top)
    return _trace_report(data, top)
