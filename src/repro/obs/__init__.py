"""Zero-dependency observability: spans, counters, manifests, stats.

Three layers, each usable on its own (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — ``span("phase", **attrs)`` /
  ``@traced`` wall-time tracing; a shared no-op unless a sink is
  installed with ``tracing(JsonlSink(path))``;
* :mod:`repro.obs.counters` — thread-safe solver counter registry
  (``counting()`` installs, ``emit()`` flushes local tallies), merged
  across the process-pool boundary in seed order;
* :mod:`repro.obs.manifest` / :mod:`repro.obs.stats` — per-run JSON
  manifests under ``results/manifests/`` and the ``repro stats``
  report over traces or manifests.

The cardinal rule: **observability never changes results**.  Spans and
counters are write-only side channels; every experiment table is
byte-identical with tracing on, off, or sampled in workers.
"""

from repro.obs.counters import Counters, counting, emit
from repro.obs.manifest import (
    default_manifest_dir,
    load_manifest,
    manifest_path,
    write_manifest,
)
from repro.obs.stats import stats_report
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    span,
    traced,
    tracing,
)

__all__ = [
    "Counters",
    "JsonlSink",
    "MemorySink",
    "counting",
    "default_manifest_dir",
    "emit",
    "load_manifest",
    "manifest_path",
    "span",
    "stats_report",
    "traced",
    "tracing",
    "write_manifest",
]
