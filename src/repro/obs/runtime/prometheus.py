"""Prometheus text exposition (format 0.0.4), stdlib only.

``render()`` turns a list of :class:`Family` objects into the plain
text a Prometheus scraper (or ``repro top``) parses:

* families sorted by name, so repeated scrapes diff cleanly;
* one ``# HELP`` / ``# TYPE`` pair per family;
* label values escaped per the spec (``\\``, ``"``, newline);
* samples emitted in the order the family provides them —
  providers sort their label sets and keep histogram buckets in
  bound order (``le`` values sort numerically, not lexically, so the
  renderer must not re-sort them).

Only the subset of the format the repo emits is implemented — no
timestamps, no exemplars, no ``# UNIT``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["CONTENT_TYPE", "Family", "Sample", "escape_label_value", "render"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def render(self) -> str:
        if self.labels:
            inner = ",".join(
                f'{key}="{escape_label_value(val)}"'
                for key, val in self.labels
            )
            return f"{self.name}{{{inner}}} {format_value(self.value)}"
        return f"{self.name} {format_value(self.value)}"


@dataclass
class Family:
    """A named metric family with its HELP/TYPE metadata and samples."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(sample.render() for sample in self.samples)
        return lines


def render(families: Iterable[Family]) -> str:
    """Render families to exposition text (trailing newline included).

    Families are sorted by name; duplicate family names are an error
    (they would produce an exposition Prometheus rejects).
    """
    ordered = sorted(families, key=lambda family: family.name)
    seen: set[str] = set()
    lines: list[str] = []
    for family in ordered:
        if family.name in seen:
            raise ValueError(f"duplicate metric family: {family.name!r}")
        seen.add(family.name)
        lines.extend(family.render())
    return "\n".join(lines) + "\n" if lines else ""
