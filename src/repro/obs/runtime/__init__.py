"""Runtime telemetry for the serving and simulation stack.

:mod:`repro.obs` (PR 3) instruments the *offline* solver stack — spans,
summing counters, run manifests.  This subpackage is the *runtime*
layer the solve service, load generator, and arrival simulator share:

``metrics``
    Labeled counter/gauge/histogram families behind a thread-safe
    :class:`MetricsRegistry` with ``merge()`` for multi-shard
    aggregation.
``prometheus``
    Text exposition (format 0.0.4) with stable ordering, escaped
    labels, and cumulative histogram buckets.
``timeseries``
    A lock-protected ring buffer of periodic samples, the data source
    for rate displays in ``repro top``.
``slo``
    Rolling-window latency/availability objectives with burn-rate
    computation; one summary schema shared by ``bench-serve`` and
    ``repro sim`` so paired comparisons can report SLO drift.
``top``
    The stdlib-only live terminal dashboard behind ``repro top``.

Everything here is stdlib-only and importable without numpy.
"""

from __future__ import annotations

from repro.obs.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    relabel_snapshot,
)
from repro.obs.runtime.prometheus import Family, Sample, render
from repro.obs.runtime.slo import (
    DEFAULT_SLOS,
    SloObjective,
    SloResult,
    SloTracker,
    format_slo_line,
    parse_slo_line,
    summarize_slo,
)
from repro.obs.runtime.timeseries import TimeSeriesRing
from repro.obs.runtime.top import fetch_snapshot, render_frame, run_top

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "SloObjective",
    "SloResult",
    "SloTracker",
    "TimeSeriesRing",
    "fetch_snapshot",
    "format_slo_line",
    "parse_slo_line",
    "relabel_snapshot",
    "render",
    "render_frame",
    "run_top",
    "summarize_slo",
]
