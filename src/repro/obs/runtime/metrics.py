"""Labeled metric families behind a thread-safe registry.

The solve service records metrics from the asyncio loop thread, from
``run_in_executor`` callbacks, and (via shipped snapshots) from pool
worker processes, and future sharded serving (ROADMAP item 2) needs to
aggregate several of these registries into one exposition.  So the
design constraints are:

* every mutation is lock-protected (one lock per metric — the service
  hot path touches two or three metrics per request, and a registry
  -wide lock would serialise unrelated endpoints);
* snapshots are plain JSON-serialisable dicts, so a shard can ship its
  registry through a pipe exactly like the pool ships solver counters;
* :meth:`MetricsRegistry.merge` folds another registry *or* snapshot
  in: counters and histograms sum, gauges sum too (label per-shard
  gauges with a ``shard`` label when summing is not what you want).

Label values are free-form strings; label *names* and metric names are
validated against the Prometheus grammar at creation time so the text
exposition in :mod:`repro.obs.runtime.prometheus` can never emit an
unparseable family.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

from repro.obs.runtime.prometheus import Family, Sample

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "relabel_snapshot",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Quarter-decade log-spaced latency bounds from 100us to ~56s — the
# same grid service/metrics.py uses, duplicated here so obs.runtime
# stays dependency-free (the service depends on obs, never the
# reverse).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (exp / 4.0) for exp in range(-16, 8)
) + (math.inf,)


def _check_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class _Metric:
    """Shared label handling: one value table keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _labels_dict(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up ({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def series(self) -> list[dict[str, Any]]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": self._labels_dict(key), "value": value}
            for key, value in items
        ]

    def _merge(self, series: list[dict[str, Any]]) -> None:
        with self._lock:
            for row in series:
                key = self._key(row["labels"])
                self._values[key] = (
                    self._values.get(key, 0.0) + float(row["value"])
                )

    def collect(self) -> Family:
        return Family(
            name=self.name,
            kind=self.kind,
            help=self.help,
            samples=[
                Sample(
                    name=self.name,
                    labels=tuple(row["labels"].items()),
                    value=row["value"],
                )
                for row in self.series()
            ],
        )


class Gauge(Counter):
    """A value that can go up and down (current queue depth, burn rate)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def remove(self, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)


class Histogram(_Metric):
    """Cumulative-bucket histogram per label set.

    Buckets are fixed at construction; the default grid matches the
    service latency histogram (quarter-decade, 100us..~56s, +Inf).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(
            DEFAULT_LATENCY_BUCKETS if buckets is None else buckets
        )
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be sorted")
        self.bounds = bounds
        # key -> [per-bucket counts, sum, count]
        self._series: dict[tuple[str, ...], list[Any]] = {}

    def _cell(self, key: tuple[str, ...]) -> list[Any]:
        cell = self._series.get(key)
        if cell is None:
            cell = [[0] * len(self.bounds), 0.0, 0]
            self._series[key] = cell
        return cell

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts, _, _ = cell = self._cell(key)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
                    break
            cell[1] += value
            cell[2] += 1

    def series(self) -> list[dict[str, Any]]:
        with self._lock:
            items = sorted(
                (key, [list(cell[0]), cell[1], cell[2]])
                for key, cell in self._series.items()
            )
        return [
            {
                "labels": self._labels_dict(key),
                "counts": counts,
                "sum": total,
                "count": count,
            }
            for key, (counts, total, count) in items
        ]

    def _merge(self, series: list[dict[str, Any]]) -> None:
        with self._lock:
            for row in series:
                key = self._key(row["labels"])
                counts = row["counts"]
                if len(counts) != len(self.bounds):
                    raise ValueError(
                        f"{self.name}: bucket count mismatch "
                        f"({len(counts)} != {len(self.bounds)})"
                    )
                cell = self._cell(key)
                for i, n in enumerate(counts):
                    cell[0][i] += int(n)
                cell[1] += float(row["sum"])
                cell[2] += int(row["count"])

    def quantile(self, q: float, **labels: str) -> float:
        """Upper bucket-bound estimate of quantile ``q`` for a series.

        Mirrors the edge-case contract of the service histogram: empty
        series -> 0.0, the +Inf bucket reports the top finite bound.
        """
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None or cell[2] == 0:
                return 0.0
            counts, _, count = cell
            q = min(max(q, 0.0), 1.0)
            rank = max(1, math.ceil(q * count))
            seen = 0
            for i, n in enumerate(counts):
                seen += n
                if seen >= rank:
                    if math.isinf(self.bounds[i]):
                        return self.bounds[i - 1] if i else 0.0
                    return self.bounds[i]
        return self.bounds[-2]  # pragma: no cover - defensive

    def collect(self) -> Family:
        samples: list[Sample] = []
        for row in self.series():
            base = tuple(row["labels"].items())
            cumulative = 0
            for bound, n in zip(self.bounds, row["counts"]):
                cumulative += n
                le = "+Inf" if math.isinf(bound) else format(bound, ".10g")
                samples.append(
                    Sample(
                        name=self.name + "_bucket",
                        labels=base + (("le", le),),
                        value=cumulative,
                    )
                )
            samples.append(
                Sample(self.name + "_sum", base, row["sum"])
            )
            samples.append(
                Sample(self.name + "_count", base, row["count"])
            )
        return Family(
            name=self.name, kind=self.kind, help=self.help, samples=samples
        )


def relabel_snapshot(
    snapshot: Mapping[str, Any], **labels: str
) -> dict[str, Any]:
    """A copy of *snapshot* with extra labels prepended to every series.

    The shard aggregation primitive: the router stamps each worker's
    registry snapshot with ``shard="0"``, ``shard="1"``, ... before
    merging, so per-shard series stay disjoint in the fleet registry and
    summed families (``merge`` always sums) decompose exactly into their
    per-shard parts.  Raises on a label name the snapshot already uses —
    silently overwriting a shard's own labels would corrupt the sum.
    """
    extra = _check_labelnames(labels)
    out: dict[str, Any] = {}
    for name, entry in snapshot.items():
        labelnames = tuple(entry["labelnames"])
        clash = set(extra) & set(labelnames)
        if clash:
            raise ValueError(
                f"{name}: relabel collides with existing labels "
                f"{sorted(clash)!r}"
            )
        new_entry = dict(entry)
        new_entry["labelnames"] = list(extra) + list(labelnames)
        new_entry["series"] = [
            {**row, "labels": {**labels, **row["labels"]}}
            for row in entry["series"]
        ]
        out[name] = new_entry
    return out


class MetricsRegistry:
    """An ordered collection of metrics with snapshot/merge/collect."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> Any:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if (
                    type(existing) is not type(metric)
                    or existing.labelnames != metric.labelnames
                ):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        "with a different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def get(self, name: str) -> Any | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> list[Family]:
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.collect() for metric in metrics]

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump, suitable for shipping across shards."""
        out: dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": metric.series(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = [
                    "+Inf" if math.isinf(b) else b for b in metric.bounds
                ]
            out[metric.name] = entry
        return out

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry (or its snapshot) into this one.

        Counters, gauges, and histograms all *sum*; unknown families
        are created on the fly, so an empty aggregator registry can
        absorb N shard snapshots and expose the fleet view.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, entry in sorted(snap.items()):
            kind = entry["type"]
            if kind not in self._KINDS:
                raise ValueError(f"{name}: unknown metric type {kind!r}")
            labelnames = tuple(entry["labelnames"])
            if kind == "histogram":
                bounds = tuple(
                    math.inf if b == "+Inf" else float(b)
                    for b in entry.get("buckets", ())
                )
                metric = self.histogram(
                    name, entry.get("help", ""), labelnames,
                    bounds or None,
                )
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labelnames)
            else:
                metric = self.counter(name, entry.get("help", ""), labelnames)
            metric._merge(entry["series"])
