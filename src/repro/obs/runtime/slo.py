"""Service-level objectives: rolling windows, attainment, burn rate.

One schema is shared by every producer so consumers can diff them:

* ``bench-serve`` summarises its client-observed pass outcomes,
* the live server tracks a rolling window and exposes gauges,
* ``repro sim`` summarises simulated completions over the makespan,

and ``paired_summary`` subtracts sim from served row by row.

A *sample* is ``(ok, latency_s)``:

* **availability** objectives count every sample; ``ok`` means the
  request got a well-formed answer.  By convention the repo's callers
  exclude 429s entirely — admission rejection is the paper's *policy*,
  not an outage — and count 5xx/transport failures as ``ok=False``.
* **latency** objectives count only samples with a latency (completed
  requests); good means ``latency_s <= threshold_s``.

Burn rate is the standard error-budget ratio
``(1 - attainment) / (1 - target)``: 1.0 burns the budget exactly at
the window's pace, >1 exhausts it early, 0 means no errors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "DEFAULT_SLOS",
    "SloObjective",
    "SloResult",
    "SloTracker",
    "format_slo_line",
    "parse_slo_line",
    "summarize_slo",
]


@dataclass(frozen=True)
class SloObjective:
    """One objective: latency-under-threshold or availability."""

    name: str
    kind: str  # "latency" | "availability"
    target: float  # fraction of good samples required, in (0, 1)
    threshold_s: float | None = None  # latency objectives only
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"{self.name}: target must be in (0, 1), got {self.target}"
            )
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError(f"{self.name}: latency SLOs need threshold_s > 0")
        if self.window_s <= 0:
            raise ValueError(f"{self.name}: window_s must be positive")


DEFAULT_SLOS: tuple[SloObjective, ...] = (
    SloObjective(
        "latency_p99", "latency", target=0.99, threshold_s=0.5, window_s=60.0
    ),
    SloObjective("availability", "availability", target=0.999, window_s=60.0),
)


@dataclass(frozen=True)
class SloResult:
    """Attainment of one objective over one observed window."""

    objective: SloObjective
    window_s: float
    samples: int
    good: int
    attainment: float
    burn_rate: float
    ok: bool

    def as_dict(self) -> dict[str, Any]:
        obj = self.objective
        return {
            "objective": obj.name,
            "kind": obj.kind,
            "target": obj.target,
            "threshold_ms": (
                None if obj.threshold_s is None else obj.threshold_s * 1000.0
            ),
            "window_s": self.window_s,
            "samples": self.samples,
            "good": self.good,
            "attainment": self.attainment,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
        }


def _evaluate(
    objective: SloObjective,
    samples: Iterable[tuple[bool, float | None]],
    window_s: float,
) -> SloResult:
    total = good = 0
    for ok, latency_s in samples:
        if objective.kind == "latency":
            if latency_s is None:
                continue
            total += 1
            good += latency_s <= objective.threshold_s
        else:
            total += 1
            good += bool(ok)
    # An empty window has consumed none of the error budget.
    attainment = good / total if total else 1.0
    burn = (1.0 - attainment) / (1.0 - objective.target)
    return SloResult(
        objective=objective,
        window_s=window_s,
        samples=total,
        good=good,
        attainment=attainment,
        burn_rate=burn,
        ok=attainment >= objective.target,
    )


def summarize_slo(
    samples: Sequence[tuple[bool, float | None]],
    objectives: Sequence[SloObjective] = DEFAULT_SLOS,
    *,
    window_s: float,
) -> list[SloResult]:
    """Batch evaluation over a finished run (a bench pass, a sim)."""
    return [_evaluate(obj, samples, window_s) for obj in objectives]


class SloTracker:
    """Rolling-window tracker for a live server.

    ``record()`` is cheap (append under a lock); ``results()`` prunes
    samples older than the largest objective window and evaluates each
    objective over its own window.  The clock is injectable so tests
    can drive window expiry deterministically.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective] = DEFAULT_SLOS,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.objectives = tuple(objectives)
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: list[tuple[float, bool, float | None]] = []
        self._horizon = max(
            (obj.window_s for obj in self.objectives), default=60.0
        )

    def record(
        self, *, ok: bool, latency_s: float | None = None
    ) -> None:
        now = self._clock()
        with self._lock:
            self._samples.append((now, bool(ok), latency_s))

    def _pruned(self, now: float) -> list[tuple[float, bool, float | None]]:
        cutoff = now - self._horizon
        with self._lock:
            if self._samples and self._samples[0][0] < cutoff:
                self._samples = [
                    row for row in self._samples if row[0] >= cutoff
                ]
            return list(self._samples)

    def results(self) -> list[SloResult]:
        now = self._clock()
        rows = self._pruned(now)
        out = []
        for obj in self.objectives:
            cutoff = now - obj.window_s
            in_window = [
                (ok, latency) for t, ok, latency in rows if t >= cutoff
            ]
            out.append(_evaluate(obj, in_window, obj.window_s))
        return out


def format_slo_line(result: SloResult) -> str:
    """One grep-able line per objective; every producer emits this.

    The ``SLO `` prefix is pinned — CI greps for it — and the fields
    are ``key=value`` so :func:`parse_slo_line` can round-trip them.
    """
    obj = result.objective
    threshold = (
        f" threshold_ms={obj.threshold_s * 1000.0:g}"
        if obj.threshold_s is not None
        else ""
    )
    verdict = "PASS" if result.ok else "FAIL"
    return (
        f"SLO {obj.name} kind={obj.kind} target={obj.target * 100.0:g}%"
        f"{threshold} window_s={result.window_s:g}"
        f" samples={result.samples} good={result.good}"
        f" attainment={result.attainment * 100.0:.3f}%"
        f" burn={result.burn_rate:.3f} {verdict}"
    )


def parse_slo_line(line: str) -> dict[str, Any]:
    """Parse a :func:`format_slo_line` line back into a dict."""
    parts = line.strip().split()
    if len(parts) < 3 or parts[0] != "SLO":
        raise ValueError(f"not an SLO summary line: {line!r}")
    out: dict[str, Any] = {"objective": parts[1], "ok": parts[-1] == "PASS"}
    for token in parts[2:-1]:
        key, _, raw = token.partition("=")
        if not _:
            raise ValueError(f"malformed SLO field {token!r} in {line!r}")
        if raw.endswith("%"):
            out[key] = float(raw[:-1]) / 100.0
        elif key == "kind":
            out[key] = raw
        else:
            out[key] = float(raw)
    return out
