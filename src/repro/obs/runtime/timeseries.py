"""Lock-protected ring buffer of periodic runtime samples.

The server loop appends one sample dict per tick (raw totals, never
rates — rates are derived by whoever reads two samples, so a missed
tick skews nothing).  ``repro top`` and the ``/metrics?format=json``
payload read windows out of it; the lock makes that safe from the
asyncio thread, the sampler task, and test threads alike.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["TimeSeriesRing", "rate"]


class TimeSeriesRing:
    """Fixed-capacity append-only ring of ``{"t": ..., ...}`` samples."""

    def __init__(self, capacity: int = 600):
        if capacity < 2:
            raise ValueError(f"ring needs capacity >= 2, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._samples: list[dict[str, Any]] = []
        self._next = 0
        self.appended_total = 0

    def append(self, sample: Mapping[str, Any]) -> None:
        if "t" not in sample:
            raise ValueError("samples must carry a 't' timestamp")
        row = dict(sample)
        with self._lock:
            if len(self._samples) < self.capacity:
                self._samples.append(row)
            else:
                self._samples[self._next] = row
            self._next = (self._next + 1) % self.capacity
            self.appended_total += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def window(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent ``n`` samples (all of them by default), oldest
        first, as copies — callers can mutate freely."""
        with self._lock:
            if len(self._samples) < self.capacity:
                ordered = list(self._samples)
            else:
                ordered = (
                    self._samples[self._next:] + self._samples[:self._next]
                )
        if n is not None:
            ordered = ordered[-n:]
        return [dict(row) for row in ordered]


def rate(samples: list[Mapping[str, Any]], key: str) -> float:
    """Per-second rate of a raw-total ``key`` across a sample window.

    Returns 0.0 when fewer than two samples carry the key or time does
    not advance (counter resets clamp to 0 rather than going negative).
    """
    rows = [s for s in samples if key in s and s[key] is not None]
    if len(rows) < 2:
        return 0.0
    dt = float(rows[-1]["t"]) - float(rows[0]["t"])
    if dt <= 0:
        return 0.0
    dv = float(rows[-1][key]) - float(rows[0][key])
    return max(dv, 0.0) / dt
