"""``repro top`` — a stdlib-only live dashboard over ``/metrics``.

Polls ``GET /metrics?format=json`` on a running ``repro serve`` and
renders a compact terminal frame: qps, admit/reject/shed rates,
latency quantiles, queue depth, energy rate, and SLO burn.  Rates are
derived client-side from the server's time-series ring (raw totals),
so a dropped poll skews nothing.

``render_frame`` is a pure function of the snapshot dict — tests feed
it canned payloads; only ``fetch_snapshot``/``run_top`` touch sockets.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Any, Callable

from repro.obs.runtime.timeseries import rate

__all__ = ["fetch_snapshot", "render_frame", "run_top", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[2J\x1b[H"


def fetch_snapshot(
    host: str, port: int, *, timeout: float = 5.0
) -> dict[str, Any]:
    """One ``/metrics?format=json`` poll; raises OSError on failure."""
    url = f"http://{host}:{port}/metrics?format=json"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def sparkline(values: list[float], width: int = 32) -> str:
    """Right-aligned unicode sparkline of the most recent *width* values."""
    tail = [float(v) for v in values[-width:]]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _BLOCKS[0] * len(tail)
    scale = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[min(scale, int(round(v / top * scale)))] for v in tail
    )


def _series_rates(samples: list[dict], key: str) -> list[float]:
    """Per-interval rates between consecutive samples of a raw total."""
    out = []
    for prev, cur in zip(samples, samples[1:]):
        out.append(rate([prev, cur], key))
    return out


def _fmt_rate(value: float) -> str:
    return f"{value:.1f}/s"


def render_frame(snapshot: dict[str, Any]) -> str:
    """Render one dashboard frame from a ``/metrics?format=json`` dict."""
    service = snapshot.get("service", {})
    requests = snapshot.get("requests", {})
    admission = snapshot.get("admission", {})
    cache = snapshot.get("cache", {})
    counters = snapshot.get("counters", {})
    runtime = snapshot.get("runtime", {})
    samples = runtime.get("timeseries", [])

    uptime = requests.get("uptime_s", 0.0)
    total = requests.get("total_requests", 0)
    qps = rate(samples, "requests")
    if qps == 0.0 and uptime > 0:
        qps = total / uptime  # cold ring: fall back to lifetime average

    lines = []
    flags = " [draining]" if service.get("draining") else ""
    lines.append(
        f"repro top — {service.get('host', '?')}:{service.get('port', '?')}"
        f"  up {uptime:.1f}s  policy={admission.get('policy', '?')}"
        f"  workers={service.get('workers', '?')}{flags}"
    )
    lines.append(
        f"requests  total={total}  qps={qps:.1f}"
        f"  queue={runtime.get('queue_depth', 0)}"
        f"  util={admission.get('utilisation', 0.0) * 100.0:.1f}%"
        f"  inflight={admission.get('inflight_units', 0.0):.0f}u"
    )
    solve_total = counters.get("service.solve.total", 0)
    lines.append(
        f"solve     total={solve_total:.0f}"
        f"  admitted={admission.get('admitted', 0)}"
        f" ({_fmt_rate(rate(samples, 'admitted'))})"
        f"  rejected={admission.get('rejected', 0)}"
        f" ({_fmt_rate(rate(samples, 'rejected'))})"
        f"  shed={admission.get('shed', 0)}"
        f"  cache_hits={cache.get('hits', 0)}"
    )
    solve = requests.get("endpoints", {}).get("/solve", {})
    latency = solve.get("latency", {})
    lines.append(
        f"latency   /solve p50={latency.get('p50_ms', 0.0):.1f}ms"
        f" p99={latency.get('p99_ms', 0.0):.1f}ms"
        f"  n={latency.get('count', 0)}"
    )
    lines.append(
        f"energy    proxy={runtime.get('energy_proxy_j', 0.0):.2f}J"
        f"  rate={rate(samples, 'energy_j'):.3f}J/s"
    )
    for row in runtime.get("slo", []):
        threshold = row.get("threshold_ms")
        extra = f" <{threshold:g}ms" if threshold is not None else ""
        verdict = "PASS" if row.get("ok") else "FAIL"
        lines.append(
            f"slo       {row.get('objective', '?')}{extra}"
            f"  {row.get('attainment', 1.0) * 100.0:.2f}%"
            f" of {row.get('target', 0.0) * 100.0:g}%"
            f"  burn={row.get('burn_rate', 0.0):.2f}"
            f"  n={row.get('samples', 0)}  {verdict}"
        )
    if len(samples) >= 2:
        lines.append(f"qps  {sparkline(_series_rates(samples, 'requests'))}")
        lines.append(f"rej  {sparkline(_series_rates(samples, 'rejected'))}")
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    once: bool = False,
    frames: int | None = None,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll-and-render loop; ``once`` prints a single frame (CI mode).

    Raises OSError (connection refused, timeout) to the caller — the
    CLI turns that into a one-line exit-2 error.
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    shown = 0
    while True:
        frame = render_frame(fetch_snapshot(host, port))
        if once or frames is not None:
            out(frame)
        else:  # pragma: no cover - interactive path
            out(_CLEAR + frame)
        shown += 1
        if once or (frames is not None and shown >= frames):
            return 0
        sleep(interval)
