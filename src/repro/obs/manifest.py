"""Run manifests: one JSON file per ``repro run`` describing the run.

A manifest pins down everything needed to reconstruct (or audit) a
results table: the code fingerprint, the resolved parameters and seed,
the cache outcome, the per-trial wall timings, and the aggregated solver
counters.  ``run_experiment`` writes one on every invocation — cache
hits included, so the provenance of a table you are looking at is always
one file away.

Manifests live under ``results/manifests/`` (override with the
``REPRO_MANIFEST_DIR`` environment variable) as
``<experiment>-<key12>.json`` where ``key12`` is the first 12 hex chars
of the run's cache key — the same content address the result cache uses,
so a manifest and its cache entry pair up by name.  Rerunning the same
(experiment, params, seed, code) overwrites the same manifest; writes
are atomic (temp file + rename).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "MANIFEST_FORMAT",
    "default_manifest_dir",
    "load_manifest",
    "manifest_path",
    "write_manifest",
]

#: Bump on schema changes; ``load_manifest`` rejects unknown formats.
MANIFEST_FORMAT = 1


def default_manifest_dir() -> Path:
    """``$REPRO_MANIFEST_DIR`` if set, else ``results/manifests`` under cwd."""
    env = os.environ.get("REPRO_MANIFEST_DIR")
    if env:
        return Path(env)
    return Path("results") / "manifests"


def manifest_path(
    experiment: str, key: str, manifest_dir: Path | None = None
) -> Path:
    """Where the manifest for (*experiment*, cache *key*) lives."""
    directory = manifest_dir if manifest_dir is not None else default_manifest_dir()
    return directory / f"{experiment}-{key[:12]}.json"


def write_manifest(
    *,
    experiment: str,
    key: str,
    code: str,
    params: dict,
    seed: int | None,
    cache: str,
    jobs: int,
    wall_seconds: float,
    trial_seconds: list[tuple[str, float]],
    counters: dict,
    manifest_dir: Path | None = None,
) -> Path:
    """Write one run manifest and return its path.

    Parameters mirror the fields of :class:`repro.runner.RunMetrics`
    plus the cache identity (*key*, *code*); the caller passes them
    explicitly so this module stays import-independent of the runner.
    The active array kernel is recorded automatically so a table's
    provenance includes which backend produced it.
    """
    from repro.kernels import get_kernel

    path = manifest_path(experiment, key, manifest_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "format": MANIFEST_FORMAT,
        "experiment": experiment,
        "key": key,
        "code": code,
        "kernel": get_kernel().name,
        "params": params,
        "seed": seed,
        "cache": cache,
        "jobs": jobs,
        "wall_seconds": wall_seconds,
        "trials": len(trial_seconds),
        "trial_seconds": [[label, dur] for label, dur in trial_seconds],
        "counters": dict(counters),
        "created": time.time(),
    }
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def load_manifest(path: str | Path) -> dict:
    """Read and validate one manifest; raises ``ValueError`` on mismatch."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path} is not a format-{MANIFEST_FORMAT} run manifest"
        )
    for field in ("experiment", "key", "cache", "trial_seconds", "counters"):
        if field not in data:
            raise ValueError(f"{path} is missing the {field!r} manifest field")
    return data
