"""The paper's primary contribution lives here.

:mod:`repro.core.rejection` implements energy-efficient real-time task
scheduling *with task rejection*: exact algorithms, an FPTAS, polynomial
heuristics, and lower bounds, for frame-based, periodic, and partitioned
multiprocessor systems.
"""

from repro.core import rejection

__all__ = ["rejection"]
