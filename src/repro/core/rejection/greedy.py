"""Polynomial-time heuristics for REJECT-MIN.

The paper (per its citation in the companion text) contributes "hardness
analysis and heuristic algorithms"; these are the reconstruction's
heuristic family:

* :func:`greedy_density`   — reject in non-decreasing penalty-per-cycle
  (``ρ/c``) order while the cost keeps improving.  Cheap tasks per cycle
  shed the most workload (= the most convex energy) per unit of penalty.
* :func:`greedy_marginal`  — reject, repeatedly, the single task whose
  rejection improves the cost the most (``ρi`` vs the *marginal* energy
  ``g(W) − g(W − ci)``); strictly stronger than density ordering on
  heterogeneous instances, at O(n²) energy evaluations.
* :func:`accept_all_repair` — naive admission control: accept everything,
  restore feasibility by dropping the largest tasks.  The baseline a
  rejection-aware scheduler must beat.
* :func:`reject_random`    — arrival-order (or shuffled) first-fit
  admission, the RAND-style reference of the companion text's
  experiments.

All of them begin by excluding tasks that can never be accepted
(``ci > s_max·D``) and by restoring feasibility, so the returned
solutions are always valid.
"""

from __future__ import annotations

import numpy as np

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Relative tolerance for "strict" cost improvements; guards fp jitter.
_IMPROVE_RTOL = 1e-12


def _acceptable_indices(problem: RejectionProblem) -> list[int]:
    """Indices of tasks that individually fit the capacity."""
    return [
        i for i, t in enumerate(problem.tasks) if problem.fits(t.cycles)
    ]


def _restore_feasibility(
    problem: RejectionProblem, accepted: set[int], order: list[int]
) -> None:
    """Reject tasks from *accepted* in *order* until the workload fits."""
    workload = problem.workload(accepted)
    for i in order:
        if problem.fits(workload):
            return
        if i in accepted:
            accepted.discard(i)
            workload -= problem.tasks[i].cycles
    if not problem.fits(workload):  # pragma: no cover - order covers all
        raise AssertionError("feasibility restoration exhausted the order")


def _improves(saving: float, penalty: float) -> bool:
    """True when rejecting (saving energy *saving* at *penalty*) helps."""
    return saving - penalty > _IMPROVE_RTOL * max(abs(saving), abs(penalty), 1.0)


def greedy_density(problem: RejectionProblem) -> RejectionSolution:
    """Reject in non-decreasing ``ρ/c`` order while the cost improves.

    Two phases: (1) reject in density order until the workload is
    feasible — mandatory in overload; (2) keep scanning the same order,
    rejecting every task whose penalty is below the marginal energy it
    releases, stopping at the first non-improving candidate (the marginal
    energy only shrinks as more work is shed, so later, denser candidates
    rarely help).
    """
    accepted = set(_acceptable_indices(problem))
    order = sorted(accepted, key=lambda i: problem.tasks[i].penalty_density)
    candidates = len(accepted)
    with span("solve.greedy_density", n=problem.n):
        _restore_feasibility(problem, accepted, order)
        forced = candidates - len(accepted)
        g = problem.energy_fn
        workload = problem.workload(accepted)
        scanned = improved = 0
        for i in order:
            if i not in accepted:
                continue
            task = problem.tasks[i]
            scanned += 1
            saving = g.energy(workload) - g.energy(
                max(workload - task.cycles, 0.0)
            )
            if not _improves(saving, task.penalty):
                break
            accepted.discard(i)
            workload -= task.cycles
            improved += 1
    obs_counters.emit(
        "greedy_density",
        calls=1,
        scanned=scanned,
        forced_rejections=forced,
        improving_rejections=improved,
    )
    return problem.solution(accepted, algorithm="greedy_density")


def greedy_marginal(problem: RejectionProblem) -> RejectionSolution:
    """Repeatedly reject the task with the best marginal cost delta.

    Each round prices every accepted task at
    ``Δi = ρi − (g(W) − g(W − ci))`` and rejects the minimiser while it is
    negative.  Terminates after at most ``n`` rounds (each rejection is
    permanent).
    """
    accepted = set(_acceptable_indices(problem))
    density_order = sorted(accepted, key=lambda i: problem.tasks[i].penalty_density)
    with span("solve.greedy_marginal", n=problem.n):
        _restore_feasibility(problem, accepted, density_order)
        g = problem.energy_fn
        workload = problem.workload(accepted)
        rounds = evaluations = rejections = 0
        while accepted:
            rounds += 1
            current = g.energy(workload)
            best_index = None
            best_delta = 0.0
            for i in accepted:
                task = problem.tasks[i]
                saving = current - g.energy(max(workload - task.cycles, 0.0))
                delta = task.penalty - saving
                evaluations += 1
                if _improves(saving, task.penalty) and (
                    best_index is None or delta < best_delta
                ):
                    best_index, best_delta = i, delta
            if best_index is None:
                break
            accepted.discard(best_index)
            workload -= problem.tasks[best_index].cycles
            rejections += 1
    obs_counters.emit(
        "greedy_marginal",
        calls=1,
        rounds=rounds,
        evaluations=evaluations,
        rejections=rejections,
    )
    return problem.solution(accepted, algorithm="greedy_marginal")


def greedy_ordered(
    problem: RejectionProblem,
    order_key,
    *,
    name: str = "greedy_ordered",
) -> RejectionSolution:
    """The greedy-density machinery under an arbitrary rejection order.

    *order_key* maps a :class:`repro.tasks.FrameTask` to its sort key;
    tasks are considered for rejection in ascending key order.  Used by
    the Fig R8 ordering ablation (``ρ/c`` vs ``ρ`` vs ``−c`` vs ...);
    ``greedy_density`` is exactly ``greedy_ordered(p, t -> ρ/c)``.
    """
    accepted = set(_acceptable_indices(problem))
    order = sorted(accepted, key=lambda i: order_key(problem.tasks[i]))
    _restore_feasibility(problem, accepted, order)
    g = problem.energy_fn
    workload = problem.workload(accepted)
    for i in order:
        if i not in accepted:
            continue
        task = problem.tasks[i]
        saving = g.energy(workload) - g.energy(max(workload - task.cycles, 0.0))
        if not _improves(saving, task.penalty):
            break
        accepted.discard(i)
        workload -= task.cycles
    return problem.solution(accepted, algorithm=name)


def accept_all_repair(problem: RejectionProblem) -> RejectionSolution:
    """Accept everything; drop largest-cycle tasks until feasible.

    The classic overload repair of admission control without any energy
    awareness — the baseline the rejection-aware algorithms are measured
    against.
    """
    accepted = set(_acceptable_indices(problem))
    largest_first = sorted(
        accepted, key=lambda i: problem.tasks[i].cycles, reverse=True
    )
    _restore_feasibility(problem, accepted, largest_first)
    return problem.solution(accepted, algorithm="accept_all_repair")


def reject_random(
    problem: RejectionProblem,
    rng: np.random.Generator | None = None,
) -> RejectionSolution:
    """First-fit admission in task order (shuffled when *rng* is given).

    Walks the tasks once and accepts each one that still fits the
    remaining capacity; everything else is rejected.  No energy
    awareness, no sorting — the RAND reference point.
    """
    order = list(range(problem.n))
    if rng is not None:
        order = list(rng.permutation(problem.n))
    accepted: set[int] = set()
    workload = 0.0
    for i in order:
        cycles = problem.tasks[i].cycles
        if problem.fits(workload + cycles):
            accepted.add(i)
            workload += cycles
    return problem.solution(accepted, algorithm="reject_random")
