"""Polynomial-time heuristics for REJECT-MIN.

The paper (per its citation in the companion text) contributes "hardness
analysis and heuristic algorithms"; these are the reconstruction's
heuristic family:

* :func:`greedy_density`   — reject in non-decreasing penalty-per-cycle
  (``ρ/c``) order while the cost keeps improving.  Cheap tasks per cycle
  shed the most workload (= the most convex energy) per unit of penalty.
* :func:`greedy_marginal`  — reject, repeatedly, the single task whose
  rejection improves the cost the most (``ρi`` vs the *marginal* energy
  ``g(W) − g(W − ci)``); strictly stronger than density ordering on
  heterogeneous instances, at O(n²) energy evaluations.
* :func:`accept_all_repair` — naive admission control: accept everything,
  restore feasibility by dropping the largest tasks.  The baseline a
  rejection-aware scheduler must beat.
* :func:`reject_random`    — arrival-order (or shuffled) first-fit
  admission, the RAND-style reference of the companion text's
  experiments.

All of them begin by excluding tasks that can never be accepted
(``ci > s_max·D``) and by restoring feasibility, so the returned
solutions are always valid.  The order scans — density sorting, the
prefix-capacity sweep, the improving-prefix scan, and the marginal
argmin — run on the active array kernel (:mod:`repro.kernels`).
"""

from __future__ import annotations

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.kernels import get_kernel
from repro.kernels.base import improves
from repro.obs import counters as obs_counters
from repro.obs.trace import span

# Backwards-compatible aliases (the tolerance and predicate moved to the
# kernel layer so both backends share them).
_improves = improves


def _acceptable_indices(problem: RejectionProblem) -> list[int]:
    """Indices of tasks that individually fit the capacity."""
    return [
        i for i, t in enumerate(problem.tasks) if problem.fits(t.cycles)
    ]


def _restore_feasibility(
    problem: RejectionProblem, accepted: set[int], order: list[int], kern=None
) -> int:
    """Reject the shortest prefix of *order* that makes the workload fit.

    Returns the number of forced rejections.  The sweep is the kernel's
    :meth:`~repro.kernels.Kernel.prefix_reject_count` over the ordered
    candidates' cycles.
    """
    kern = kern or get_kernel()
    candidates = [i for i in order if i in accepted]
    cycles = [problem.tasks[i].cycles for i in candidates]
    k, _ = kern.prefix_reject_count(
        cycles, problem.workload(accepted), problem.capacity
    )
    for i in candidates[:k]:
        accepted.discard(i)
    if not problem.fits(problem.workload(accepted)):  # pragma: no cover
        raise AssertionError("feasibility restoration exhausted the order")
    return k


def _improving_scan(
    problem: RejectionProblem, accepted: set[int], order: list[int], kern
) -> tuple[int, int]:
    """Reject the longest improving prefix of *order*'s remaining tasks.

    Returns ``(scanned, improved)`` — candidates examined and candidates
    actually rejected (the scan stops at the first non-improving one).
    """
    remaining = [i for i in order if i in accepted]
    count, _ = kern.improving_prefix(
        problem.workload(accepted),
        [problem.tasks[i].cycles for i in remaining],
        [problem.tasks[i].penalty for i in remaining],
        problem.energy_fn,
    )
    for i in remaining[:count]:
        accepted.discard(i)
    return min(count + 1, len(remaining)), count


def greedy_density(problem: RejectionProblem) -> RejectionSolution:
    """Reject in non-decreasing ``ρ/c`` order while the cost improves.

    Two phases: (1) reject in density order until the workload is
    feasible — mandatory in overload; (2) keep scanning the same order,
    rejecting every task whose penalty is below the marginal energy it
    releases, stopping at the first non-improving candidate (the marginal
    energy only shrinks as more work is shed, so later, denser candidates
    rarely help).
    """
    kern = get_kernel()
    idx = _acceptable_indices(problem)
    accepted = set(idx)
    positions = kern.density_order(
        [problem.tasks[i].cycles for i in idx],
        [problem.tasks[i].penalty for i in idx],
    )
    order = [idx[k] for k in positions]
    with span("solve.greedy_density", n=problem.n):
        forced = _restore_feasibility(problem, accepted, order, kern)
        scanned, improved = _improving_scan(problem, accepted, order, kern)
    obs_counters.emit(
        "greedy_density",
        calls=1,
        scanned=scanned,
        forced_rejections=forced,
        improving_rejections=improved,
    )
    return problem.solution(accepted, algorithm="greedy_density")


def greedy_marginal(problem: RejectionProblem) -> RejectionSolution:
    """Repeatedly reject the task with the best marginal cost delta.

    Each round prices every accepted task at
    ``Δi = ρi − (g(W) − g(W − ci))`` and rejects the minimiser while it is
    negative.  Terminates after at most ``n`` rounds (each rejection is
    permanent).  Rounds scan the active tasks in ascending index order,
    so ties resolve to the lowest index on every kernel.
    """
    kern = get_kernel()
    accepted = set(_acceptable_indices(problem))
    density_order = sorted(
        accepted, key=lambda i: problem.tasks[i].penalty_density
    )
    with span("solve.greedy_marginal", n=problem.n):
        _restore_feasibility(problem, accepted, density_order, kern)
        workload = problem.workload(accepted)
        active = sorted(accepted)
        rounds = evaluations = rejections = 0
        while active:
            rounds += 1
            evaluations += len(active)
            best = kern.marginal_best(
                workload,
                [problem.tasks[i].cycles for i in active],
                [problem.tasks[i].penalty for i in active],
                problem.energy_fn,
            )
            if best < 0:
                break
            i = active.pop(best)
            accepted.discard(i)
            workload -= problem.tasks[i].cycles
            rejections += 1
    obs_counters.emit(
        "greedy_marginal",
        calls=1,
        rounds=rounds,
        evaluations=evaluations,
        rejections=rejections,
    )
    return problem.solution(accepted, algorithm="greedy_marginal")


def greedy_ordered(
    problem: RejectionProblem,
    order_key,
    *,
    name: str = "greedy_ordered",
) -> RejectionSolution:
    """The greedy-density machinery under an arbitrary rejection order.

    *order_key* maps a :class:`repro.tasks.FrameTask` to its sort key;
    tasks are considered for rejection in ascending key order.  Used by
    the Fig R8 ordering ablation (``ρ/c`` vs ``ρ`` vs ``−c`` vs ...);
    ``greedy_density`` is exactly ``greedy_ordered(p, t -> ρ/c)``.
    """
    kern = get_kernel()
    accepted = set(_acceptable_indices(problem))
    order = sorted(accepted, key=lambda i: order_key(problem.tasks[i]))
    _restore_feasibility(problem, accepted, order, kern)
    _improving_scan(problem, accepted, order, kern)
    return problem.solution(accepted, algorithm=name)


def accept_all_repair(problem: RejectionProblem) -> RejectionSolution:
    """Accept everything; drop largest-cycle tasks until feasible.

    The classic overload repair of admission control without any energy
    awareness — the baseline the rejection-aware algorithms are measured
    against.
    """
    accepted = set(_acceptable_indices(problem))
    largest_first = sorted(
        accepted, key=lambda i: problem.tasks[i].cycles, reverse=True
    )
    _restore_feasibility(problem, accepted, largest_first)
    return problem.solution(accepted, algorithm="accept_all_repair")


def reject_random(
    problem: RejectionProblem,
    rng=None,
) -> RejectionSolution:
    """First-fit admission in task order (shuffled when *rng* is given).

    Walks the tasks once and accepts each one that still fits the
    remaining capacity; everything else is rejected.  No energy
    awareness, no sorting — the RAND reference point.  *rng* is anything
    with a ``permutation(n)`` method (e.g. ``numpy.random.Generator``);
    the module itself stays NumPy-free.
    """
    order = list(range(problem.n))
    if rng is not None:
        order = [int(i) for i in rng.permutation(problem.n)]
    accepted: set[int] = set()
    workload = 0.0
    for i in order:
        cycles = problem.tasks[i].cycles
        if problem.fits(workload + cycles):
            accepted.add(i)
            workload += cycles
    return problem.solution(accepted, algorithm="reject_random")
