"""Task rejection for periodic task sets under EDF.

On one processor, EDF is optimal for independent periodic tasks, and at a
constant speed ``s`` a set with utilisation ``U = Σ ci/pi`` is schedulable
iff ``U ≤ s``.  For convex power, the energy-optimal feasible speed for an
accepted set is constant (Jensen), so over a hyper-period ``L`` the
accepted set's energy is exactly the frame-based ``g`` evaluated at
``W = U·L`` with deadline ``L`` — the frame machinery transfers verbatim:

* accepted workload   ``W = Σ (ci/pi)·L`` cycles,
* capacity            ``s_max·L``  (i.e. ``U ≤ s_max``),
* cost                ``g(W) + Σ rejected ρi``.

:func:`periodic_problem` performs that reduction; the EDF simulator in
:mod:`repro.sched` independently validates both the feasibility and the
energy prediction (Tab R2).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.energy.base import EnergyFunction
from repro.energy.continuous import ContinuousEnergyFunction
from repro.energy.critical import CriticalSpeedEnergyFunction
from repro.power.base import DormantMode, PowerModel
from repro.tasks.model import FrameTask, FrameTaskSet, PeriodicTaskSet

#: Signature of an energy-function factory: deadline -> EnergyFunction.
EnergyFactory = Callable[[float], EnergyFunction]


def continuous_energy(power_model: PowerModel) -> EnergyFactory:
    """Factory for the negligible-leakage ideal-processor model."""
    return lambda deadline: ContinuousEnergyFunction(power_model, deadline)


def leakage_aware_energy(
    power_model: PowerModel, *, dormant: DormantMode | None = None
) -> EnergyFactory:
    """Factory for the dormant-enable, leakage-aware model."""
    return lambda deadline: CriticalSpeedEnergyFunction(
        power_model, deadline, dormant=dormant
    )


def periodic_problem(
    tasks: PeriodicTaskSet,
    energy_factory: EnergyFactory,
    *,
    horizon: float | None = None,
) -> RejectionProblem:
    """Reduce a periodic rejection instance to a frame-based one.

    Parameters
    ----------
    tasks:
        The periodic task set (task order is preserved, so solution
        indices refer to the same positions).
    energy_factory:
        Builds the workload→energy function for the hyper-period horizon
        (e.g. :func:`continuous_energy` / :func:`leakage_aware_energy`).
    horizon:
        Override for the scheduling horizon; defaults to the exact
        hyper-period.  Useful when task periods are irrational-ish floats
        and the Fraction-LCM would explode.
    """
    if len(tasks) == 0:
        raise ValueError("a rejection problem needs at least one task")
    length = float(tasks.hyper_period) if horizon is None else float(horizon)
    if length <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    frame = FrameTaskSet(
        FrameTask(
            name=t.name,
            cycles=t.utilization * length,
            penalty=t.penalty,
        )
        for t in tasks
    )
    return RejectionProblem(tasks=frame, energy_fn=energy_factory(length))


def accepted_periodic_tasks(
    solution: RejectionSolution, tasks: PeriodicTaskSet
) -> PeriodicTaskSet:
    """Map a frame-problem solution back to the accepted periodic tasks."""
    if solution.problem.n != len(tasks):
        raise ValueError(
            "solution and task set disagree on size "
            f"({solution.problem.n} != {len(tasks)})"
        )
    for i in range(len(tasks)):
        if solution.problem.tasks[i].name != tasks[i].name:
            raise ValueError(
                f"task order mismatch at index {i}: "
                f"{solution.problem.tasks[i].name!r} != {tasks[i].name!r}"
            )
    return tasks.subset(solution.accepted)


def edf_speed(accepted: PeriodicTaskSet, power_model: PowerModel) -> float:
    """The constant execution speed for the accepted set under EDF.

    The energy-optimal feasible speed: the utilisation, clamped into the
    processor's range (and no lower than the critical speed when the
    model carries leakage — running slower than ``s*`` never helps).
    """
    if len(accepted) == 0:
        return 0.0
    utilization = accepted.total_utilization
    if utilization > power_model.s_max * (1 + 1e-12):
        raise ValueError(
            f"accepted utilisation {utilization} exceeds s_max "
            f"{power_model.s_max}"
        )
    target = max(utilization, power_model.critical_speed())
    return power_model.clamp_speed(target)
