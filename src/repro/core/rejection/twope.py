"""Task rejection on a heterogeneous DVS + non-DVS two-PE system.

The companion text's Section III-C pairs a DVS processor with a non-DVS
processing element (e.g. an FPGA): task ``τi`` costs ``ci`` cycles on the
DVS side or ``ui`` utilisation on the PE (total PE utilisation ≤ 100%).
This module extends that model with the rejection option — the natural
fusion of the two DATE'07 papers: each task is placed on the **DVS**
processor, on the **PE**, or **rejected** at penalty ``ρi``:

    minimize  g(Σ_DVS ci) + P_pe·D·(Σ_PE ui) + Σ_rej ρi
    s.t.      Σ_DVS ci ≤ s_max·D   and   Σ_PE ui ≤ 1

with a *workload-dependent* PE (energy ∝ utilisation, the companion's
``(P2·L)·U2`` model); a workload-independent PE is the special case
``pe_power·D`` charged iff any task lands there (also supported).

Algorithms: :func:`exhaustive_twope` (3ⁿ oracle) and
:func:`greedy_twope` (density-ordered marginal placement with a
rejection-repair pass).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import fits, require_nonnegative, require_positive
from repro.core.rejection.problem import CostBreakdown
from repro.energy.base import EnergyFunction
from repro.obs import counters as obs_counters
from repro.obs.trace import span
from repro.tasks.model import FrameTaskSet

#: Enumeration guard for the 3^n oracle.
MAX_ENUM = 3_000_000

#: Placement codes.
REJECT, DVS, PE = 0, 1, 2


@dataclass(frozen=True)
class TwoPeTask:
    """One task of the two-PE rejection problem.

    Attributes
    ----------
    name:
        Unique identifier.
    cycles:
        Execution cycles on the DVS processor.
    pe_utilization:
        Utilisation ``ui`` consumed on the non-DVS PE (0 < ui; a value
        above 1 means the task cannot run on the PE at all).
    penalty:
        Rejection penalty.
    """

    name: str
    cycles: float
    pe_utilization: float
    penalty: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        require_positive("cycles", self.cycles)
        require_positive("pe_utilization", self.pe_utilization)
        require_nonnegative("penalty", self.penalty)


@dataclass(frozen=True)
class TwoPeProblem:
    """A two-PE rejection instance.

    Attributes
    ----------
    tasks:
        The task tuple (order defines indices).
    energy_fn:
        DVS-side workload→energy function (capacity = ``max_workload``).
    pe_power:
        Power of the non-DVS PE (W).
    workload_dependent:
        True: PE energy is ``pe_power·D·U2`` (utilisation-proportional);
        False: ``pe_power·D`` whenever at least one task is on the PE.
    """

    tasks: tuple[TwoPeTask, ...]
    energy_fn: EnergyFunction
    pe_power: float
    workload_dependent: bool = True

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a two-PE problem needs at least one task")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        require_nonnegative("pe_power", self.pe_power)

    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def dvs_capacity(self) -> float:
        """DVS-side cycle capacity ``s_max·D``."""
        return self.energy_fn.max_workload

    def pe_energy(self, pe_utilization: float, any_on_pe: bool) -> float:
        """PE-side energy over the horizon."""
        horizon = self.energy_fn.deadline
        if self.workload_dependent:
            return self.pe_power * horizon * pe_utilization
        return self.pe_power * horizon if any_on_pe else 0.0

    def cost_of(self, placement: Sequence[int]) -> CostBreakdown:
        """Cost of a placement vector (entries REJECT/DVS/PE).

        Raises ValueError when either side's capacity is violated.
        """
        if len(placement) != self.n:
            raise ValueError(
                f"placement has {len(placement)} entries for {self.n} tasks"
            )
        dvs_cycles = 0.0
        pe_util = 0.0
        penalty = 0.0
        any_pe = False
        for task, where in zip(self.tasks, placement):
            if where == DVS:
                dvs_cycles += task.cycles
            elif where == PE:
                pe_util += task.pe_utilization
                any_pe = True
            elif where == REJECT:
                penalty += task.penalty
            else:
                raise ValueError(f"invalid placement code {where!r}")
        if pe_util > 1.0 + 1e-12:
            raise ValueError(f"PE utilisation {pe_util} exceeds 100%")
        energy = self.energy_fn.energy(min(dvs_cycles, self.dvs_capacity)) + (
            self.pe_energy(pe_util, any_pe)
        )
        if not fits(dvs_cycles, self.dvs_capacity):
            raise ValueError(
                f"DVS workload {dvs_cycles} exceeds {self.dvs_capacity}"
            )
        return CostBreakdown(energy=energy, penalty=penalty)


@dataclass(frozen=True, eq=False)
class TwoPeSolution:
    """A validated placement with its cost."""

    problem: TwoPeProblem
    placement: tuple[int, ...]
    breakdown: CostBreakdown
    algorithm: str

    @property
    def cost(self) -> float:
        """Total cost."""
        return self.breakdown.total

    @property
    def on_dvs(self) -> tuple[int, ...]:
        """Indices on the DVS processor."""
        return tuple(i for i, w in enumerate(self.placement) if w == DVS)

    @property
    def on_pe(self) -> tuple[int, ...]:
        """Indices on the non-DVS PE."""
        return tuple(i for i, w in enumerate(self.placement) if w == PE)

    @property
    def rejected(self) -> tuple[int, ...]:
        """Rejected indices."""
        return tuple(i for i, w in enumerate(self.placement) if w == REJECT)


def _solution(problem: TwoPeProblem, placement, algorithm: str) -> TwoPeSolution:
    placement = tuple(placement)
    return TwoPeSolution(
        problem=problem,
        placement=placement,
        breakdown=problem.cost_of(placement),
        algorithm=algorithm,
    )


def exhaustive_twope(problem: TwoPeProblem) -> TwoPeSolution:
    """Optimal placement by 3ⁿ enumeration (oracle-sized instances)."""
    count = 3**problem.n
    if count > MAX_ENUM:
        raise ValueError(
            f"{count} placements exceed the enumeration guard ({MAX_ENUM})"
        )
    g = problem.energy_fn
    cap = problem.dvs_capacity
    horizon = g.deadline
    best_cost = math.inf
    best = None
    obs_counters.emit("exhaustive_twope", calls=1, placements=count)
    with span("solve.exhaustive_twope", n=problem.n):
        for placement in itertools.product(
            (REJECT, DVS, PE), repeat=problem.n
        ):
            dvs = pe = penalty = 0.0
            any_pe = False
            ok = True
            for task, where in zip(problem.tasks, placement):
                if where == DVS:
                    dvs += task.cycles
                    if not fits(dvs, cap):
                        ok = False
                        break
                elif where == PE:
                    pe += task.pe_utilization
                    any_pe = True
                    if pe > 1.0 + 1e-12:
                        ok = False
                        break
                else:
                    penalty += task.penalty
            if not ok:
                continue
            cost = (
                g.energy(min(dvs, cap))
                + problem.pe_energy(pe, any_pe)
                + penalty
            )
            if cost < best_cost:
                best_cost, best = cost, placement
    if best is None:  # pragma: no cover - all-reject is always valid
        raise AssertionError("no valid placement")
    return _solution(problem, best, "exhaustive_twope")


def greedy_twope(problem: TwoPeProblem) -> TwoPeSolution:
    """Marginal-cost greedy placement.

    Tasks are considered in non-increasing ``penalty / min-resource``
    density (most valuable per unit of either resource first); each task
    takes whichever of {DVS, PE, reject} has the lowest *marginal* cost
    at the current partial state, honouring both capacities.  A final
    repair sweep re-evaluates every placed task against rejection (the
    marginal picture sharpens once the loads are known).
    """
    g = problem.energy_fn
    cap = problem.dvs_capacity
    order = sorted(
        range(problem.n),
        key=lambda i: problem.tasks[i].penalty
        / min(problem.tasks[i].cycles, problem.tasks[i].pe_utilization * cap),
        reverse=True,
    )
    placement = [REJECT] * problem.n
    dvs = pe = 0.0
    any_pe = False

    def pe_marginal(task: TwoPeTask) -> float:
        if problem.workload_dependent:
            return problem.pe_power * g.deadline * task.pe_utilization
        return 0.0 if any_pe else problem.pe_power * g.deadline

    for i in order:
        task = problem.tasks[i]
        options: list[tuple[float, int]] = [(task.penalty, REJECT)]
        if fits(dvs + task.cycles, cap):
            marginal = g.energy(min(dvs + task.cycles, cap)) - g.energy(dvs)
            options.append((marginal, DVS))
        if task.pe_utilization <= 1.0 and pe + task.pe_utilization <= 1.0 + 1e-12:
            options.append((pe_marginal(task), PE))
        _, choice = min(options, key=lambda pair: pair[0])
        placement[i] = choice
        if choice == DVS:
            dvs += task.cycles
        elif choice == PE:
            pe += task.pe_utilization
            any_pe = True

    # Local search over single-task moves AND pairwise placement swaps.
    # The construction order biases early tasks toward the then-cheap
    # DVS marginals; single moves undo that myopia, and swaps unblock
    # the full-PE situations where admitting a better task requires
    # trading places with a worse one.  Each accepted move strictly
    # decreases the cost, so the loop terminates (guard = fp insurance).
    def evaluate(candidate: list[int]) -> float:
        """Cost of a placement, or +inf when it violates a capacity."""
        dvs_load = sum(
            t.cycles for t, w in zip(problem.tasks, candidate) if w == DVS
        )
        pe_load = sum(
            t.pe_utilization for t, w in zip(problem.tasks, candidate) if w == PE
        )
        if not fits(dvs_load, cap) or not fits(pe_load, 1.0):
            return math.inf
        penalty = sum(
            t.penalty for t, w in zip(problem.tasks, candidate) if w == REJECT
        )
        return (
            g.energy(min(dvs_load, cap))
            + problem.pe_energy(pe_load, pe_load > 0.0)
            + penalty
        )

    current = evaluate(placement)
    sweeps = moves = evaluations = 0
    with span("solve.greedy_twope", n=problem.n):
        for _ in range(10 * problem.n + 10):
            sweeps += 1
            best_cost = current
            best_placement: list[int] | None = None
            for i in range(problem.n):
                here = placement[i]
                for where in (REJECT, DVS, PE):
                    if where == here:
                        continue
                    placement[i] = where
                    candidate = evaluate(placement)
                    evaluations += 1
                    placement[i] = here
                    if candidate < best_cost - 1e-12:
                        best_cost = candidate
                        best_placement = list(placement)
                        best_placement[i] = where
            for i in range(problem.n):
                for j in range(i + 1, problem.n):
                    if placement[i] == placement[j]:
                        continue
                    placement[i], placement[j] = placement[j], placement[i]
                    candidate = evaluate(placement)
                    evaluations += 1
                    if candidate < best_cost - 1e-12:
                        best_cost = candidate
                        best_placement = list(placement)
                    placement[i], placement[j] = placement[j], placement[i]
            if best_placement is None:
                break
            placement = best_placement
            moves += 1
            current = best_cost
    obs_counters.emit(
        "greedy_twope",
        calls=1,
        sweeps=sweeps,
        moves=moves,
        evaluations=evaluations,
    )
    return _solution(problem, placement, "greedy_twope")


def tasks_from_frame(
    frame: FrameTaskSet,
    pe_utilizations: Sequence[float],
) -> tuple[TwoPeTask, ...]:
    """Pair a frame task set with per-task PE utilisations."""
    if len(frame) != len(pe_utilizations):
        raise ValueError(
            f"{len(frame)} tasks but {len(pe_utilizations)} PE utilisations"
        )
    return tuple(
        TwoPeTask(
            name=t.name,
            cycles=t.cycles,
            pe_utilization=float(u),
            penalty=t.penalty,
        )
        for t, u in zip(frame, pe_utilizations)
    )
