"""FPTAS for REJECT-MIN by penalty scaling.

Scheme (standard min-knapsack-style scaling, adapted to the convex energy
term; DESIGN.md §1.3):

1. Seed with the best polynomial heuristic; its cost ``UB`` upper-bounds
   the optimum.
2. Tasks whose individual penalty exceeds ``UB`` are *forced-accept*: no
   solution of cost ≤ UB ever rejects them (their penalty alone would
   blow the budget).  Their cycles become a base workload offset.
3. Scale the remaining penalties by ``K = ε·UB/r`` (``r`` candidates) and
   run the penalty-indexed DP on ``⌊ρi/K⌋ ≤ r/ε``, i.e. at most ``r²/ε``
   table cells.
4. Evaluate every reachable level with the **true** energy function and
   the scaled penalty proxy, reconstruct the winner, and return the
   cheaper of {winner, seed}.

Guarantee: each scaled penalty under-counts by < K, so the proxy search
misses the optimum by at most ``r·K = ε·UB``; since ``UB ≥ OPT`` the
returned cost is ≤ ``OPT + ε·UB ≤ (1 + ε·UB/OPT)·OPT``, and because the
seed is returned when cheaper, the cost is also ≤ ``UB``.  With the seed
within a constant factor of OPT (the usual case; always verifiable a
posteriori against the fractional bound) this is a (1+O(ε))-approximation
with running time polynomial in ``n`` and ``1/ε`` — an FPTAS.
"""

from __future__ import annotations

import math

from repro.core.rejection.dp import _check_table, _dp_over_penalties
from repro.core.rejection.greedy import (
    accept_all_repair,
    greedy_density,
    greedy_marginal,
)
from repro.core.rejection.problem import (
    RejectionProblem,
    RejectionSolution,
    best_solution,
)
from repro.kernels import get_kernel
from repro.obs import counters as obs_counters
from repro.obs.trace import span


def fptas(
    problem: RejectionProblem,
    *,
    eps: float = 0.1,
    seed_solution: RejectionSolution | None = None,
) -> RejectionSolution:
    """Approximate REJECT-MIN within additive ``ε·UB`` (see module doc).

    Parameters
    ----------
    eps:
        Scaling accuracy; table size grows as ``n²/ε``.
    seed_solution:
        Optional pre-computed upper-bound solution; by default the best
        of the greedy family is used.
    """
    if not eps > 0:
        raise ValueError(f"eps must be > 0, got {eps!r}")

    seed = seed_solution or best_solution(
        greedy_marginal(problem), greedy_density(problem), accept_all_repair(problem)
    )
    upper = seed.cost
    if upper <= 0.0:
        # Zero total cost cannot be beaten; the seed is optimal.
        return problem.solution(
            seed.accepted, algorithm="fptas", eps=eps, scaled=False
        )

    cap = problem.capacity
    forced_accept = [
        i
        for i, t in enumerate(problem.tasks)
        if t.penalty > upper and problem.fits(t.cycles)
    ]
    # Tasks too large to ever accept are equally out of the DP.
    forced_reject = [
        i for i, t in enumerate(problem.tasks) if not problem.fits(t.cycles)
    ]
    decided = set(forced_accept) | set(forced_reject)
    candidates = [i for i in range(problem.n) if i not in decided]

    base_workload = problem.workload(forced_accept)
    if not problem.fits(base_workload):
        # Cannot happen when `upper` comes from a feasible seed: the seed
        # accepts every forced-accept task (rejecting one costs > UB)...
        # unless the seed itself IS infeasible, which solution() forbids.
        raise AssertionError("forced-accept set exceeds the capacity")

    if not candidates:
        return problem.solution(
            forced_accept, algorithm="fptas", eps=eps, scaled=False
        )

    scale = eps * upper / len(candidates)
    if scale <= 0.0:
        # `upper` is denormal-small: every cost in play is ~0 and the
        # seed cannot be meaningfully improved (scaling would divide by
        # an underflowed zero).
        return problem.solution(
            seed.accepted, algorithm="fptas", eps=eps, scaled=False
        )
    units = [int(math.floor(problem.tasks[i].penalty / scale)) for i in candidates]
    cycles = [problem.tasks[i].cycles for i in candidates]
    states = sum(units) + 1
    _check_table(states, "fptas")
    obs_counters.emit(
        "fptas",
        calls=1,
        scale=scale,
        states=states,
        cells=states * len(candidates),
        candidates=len(candidates),
        forced_accept=len(forced_accept),
        forced_reject=len(forced_reject),
    )
    kern = get_kernel()
    total = base_workload + sum(cycles)
    with span(
        "solve.fptas", n=problem.n, eps=eps, states=states
    ):
        dp, decisions = _dp_over_penalties(units, cycles, kern)
        # Each reachable level is priced with the true energy function
        # and the scaled penalty proxy ``p * scale``.
        best_p, _ = kern.best_penalty_level(
            dp, total, cap, problem.energy_fn, scale
        )

    if best_p < 0:
        # Every DP completion overflows the capacity — only possible when
        # even rejecting all candidates leaves base_workload infeasible,
        # which the assertion above excludes; fall back to the seed.
        return problem.solution(
            seed.accepted, algorithm="fptas", eps=eps, scaled=False
        )

    rejected: set[int] = set(forced_reject)
    p = best_p
    for k in range(len(candidates) - 1, -1, -1):
        if decisions[k][p]:
            rejected.add(candidates[k])
            p -= units[k]
    accepted = [i for i in range(problem.n) if i not in rejected]
    scaled = problem.solution(
        accepted,
        algorithm="fptas",
        eps=eps,
        scaled=True,
        additive_bound=eps * upper,
    )
    if seed.cost < scaled.cost:
        obs_counters.add("fptas.seed_won")
        return problem.solution(
            seed.accepted,
            algorithm="fptas",
            eps=eps,
            scaled=False,
            additive_bound=eps * upper,
        )
    return scaled
