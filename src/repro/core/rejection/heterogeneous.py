"""Rejection with per-task power coefficients (LEET/LEUF model).

The companion text's "different power consumption characteristics" model
gives task ``τi`` its own dynamic power ``Pi(s) = ρi·s^α``.  For an
accepted set ``A`` sharing the frame ``[0, D]`` on an ideal unbounded
processor, the KKT-optimal per-task times (see
:mod:`repro.speedopt.heterogeneous`) yield the closed-form energy

    E(A) = ( Σ_{i∈A} ci · ρi^{1/α} )^α / D^{α-1}.

Defining *effective cycles* ``ĉi = ci · ρi^{1/α}``, the energy depends
only on ``Σ ĉi`` — so heterogeneous rejection reduces **exactly** to the
homogeneous problem on transformed cycles, and every algorithm in this
package (exhaustive, pareto_exact, FPTAS, greedy, bounds) applies
unchanged.  :func:`heterogeneous_problem` performs the reduction;
:func:`heterogeneous_energy` evaluates the closed form directly (used to
cross-validate the reduction in the tests).

Scope note: the reduction needs an *unbounded* speed range — a finite
``s_max`` caps individual speeds, which breaks the sum-only structure.
Capped instances should use :func:`repro.speedopt.heterogeneous_assignment`
per subset (exponential, oracle-only) or treat the cap as a separate
feasibility filter.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import require_nonnegative, require_positive
from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.energy.continuous import ContinuousEnergyFunction
from repro.power.polynomial import PolynomialPowerModel
from repro.tasks.model import FrameTask, FrameTaskSet


@dataclass(frozen=True)
class HeterogeneousTask:
    """A frame task with its own dynamic-power coefficient.

    Attributes
    ----------
    name:
        Unique identifier.
    cycles:
        Worst-case execution cycles.
    power_coeff:
        The task's ``ρi`` in ``Pi(s) = ρi · s^α`` (> 0).
    penalty:
        Rejection penalty.
    """

    name: str
    cycles: float
    power_coeff: float
    penalty: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        require_positive("cycles", self.cycles)
        require_positive("power_coeff", self.power_coeff)
        require_nonnegative("penalty", self.penalty)

    def effective_cycles(self, alpha: float) -> float:
        """``ĉ = c · ρ^(1/α)`` — the reduction's transformed size."""
        return self.cycles * self.power_coeff ** (1.0 / alpha)


def heterogeneous_energy(
    tasks: Sequence[HeterogeneousTask],
    accepted: Sequence[int],
    *,
    deadline: float,
    alpha: float = 3.0,
) -> float:
    """Closed-form optimal energy of the accepted subset (unbounded s)."""
    require_positive("deadline", deadline)
    if not alpha > 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha!r}")
    total = sum(tasks[i].effective_cycles(alpha) for i in set(accepted))
    return total**alpha / deadline ** (alpha - 1.0)


def heterogeneous_problem(
    tasks: Sequence[HeterogeneousTask],
    *,
    deadline: float,
    alpha: float = 3.0,
) -> RejectionProblem:
    """Reduce heterogeneous rejection to a homogeneous instance.

    The returned problem's task *cycles* are the effective cycles
    ``ĉi``; its energy function is the ideal continuous ``g`` with unit
    coefficient, so ``g(Σĉ) = (Σĉ)^α / D^(α-1)`` matches
    :func:`heterogeneous_energy` exactly.  Solutions map back by index
    (task order is preserved).
    """
    if not tasks:
        raise ValueError("need at least one task")
    require_positive("deadline", deadline)
    if not alpha > 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha!r}")
    frame = FrameTaskSet(
        FrameTask(
            name=t.name,
            cycles=t.effective_cycles(alpha),
            penalty=t.penalty,
        )
        for t in tasks
    )
    model = PolynomialPowerModel(beta1=1.0, alpha=alpha, s_max=math.inf)
    return RejectionProblem(
        tasks=frame, energy_fn=ContinuousEnergyFunction(model, deadline)
    )


def accepted_heterogeneous_tasks(
    solution: RejectionSolution, tasks: Sequence[HeterogeneousTask]
) -> list[HeterogeneousTask]:
    """Map a reduced-problem solution back to the heterogeneous tasks."""
    if solution.problem.n != len(tasks):
        raise ValueError(
            "solution and task list disagree on size "
            f"({solution.problem.n} != {len(tasks)})"
        )
    for i, t in enumerate(tasks):
        if solution.problem.tasks[i].name != t.name:
            raise ValueError(f"task order mismatch at index {i}")
    return [tasks[i] for i in sorted(solution.accepted)]
