"""Fractional relaxation of REJECT-MIN: lower bound and rounding.

Allowing a task to be rejected *fractionally* (``xi ∈ [0, 1]``) turns
REJECT-MIN into a convex program:

    minimize  g(Σ ci (1 − xi)) + Σ ρi xi     s.t.  Σ ci (1 − xi) ≤ cap.

For a fixed accepted workload ``w``, the cheapest fractional way to shed
``C − w`` cycles is the fractional knapsack: reject prefixes of the tasks
sorted by penalty density ``ρ/c``.  That yields a piecewise-linear convex
shedding cost ``h(C − w)``, so the relaxation reduces to minimising the
1-D convex function ``g(w) + h(C − w)`` — solved here by evaluating every
breakpoint and golden-sectioning inside the bracketing pieces.

The optimum is a **valid lower bound** on REJECT-MIN (used to normalise
the large-instance experiments, mirroring the companion text's "relaxed
relative ratio"), and the classic structure — at most one fractional task
— makes rounding trivial: :func:`lp_rounding` rounds that task both ways
and keeps the better feasible result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rejection.problem import (
    RejectionProblem,
    RejectionSolution,
    best_solution,
)
from repro.energy.base import EnergyFunction
from repro.kernels import get_kernel

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def _require_convex(energy_fn: EnergyFunction) -> EnergyFunction:
    """Return a convex stand-in for *energy_fn* (or the function itself).

    Non-convex functions (dormant-enable with ``e_sw > 0``) expose
    ``convex_lower_bound``; substituting it keeps the relaxation a valid
    lower bound because it under-estimates pointwise.
    """
    if getattr(energy_fn, "is_convex", True):
        return energy_fn
    lower = getattr(energy_fn, "convex_lower_bound", None)
    if lower is None:
        raise ValueError(
            f"{type(energy_fn).__name__} is not convex and offers no "
            "convex_lower_bound; the fractional relaxation needs convexity"
        )
    return lower()


def _minimize_convex(fn, lo: float, hi: float, *, iters: int = 120) -> tuple[float, float]:
    """(argmin, min) of the convex *fn* on [lo, hi] by golden section."""
    if hi < lo:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    if math.isclose(lo, hi, rel_tol=0, abs_tol=1e-15):
        return lo, fn(lo)
    a, b = lo, hi
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = fn(c), fn(d)
    for _ in range(iters):
        if (b - a) <= 1e-12 * max(1.0, abs(lo) + abs(hi)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = fn(d)
    x = (a + b) / 2.0
    return x, fn(x)


@dataclass(frozen=True)
class FractionalRelaxation:
    """Result of the fractional relaxation.

    Attributes
    ----------
    value:
        The relaxation optimum — a lower bound on the integral optimum.
    accepted_workload:
        The optimal fractional accepted workload ``w*``.
    fully_rejected:
        Indices rejected with ``xi = 1`` at the optimum (density order).
    fractional_task:
        The single partially rejected task index, or None.
    fraction:
        Its rejected fraction ``xi`` (0 when no fractional task).
    """

    value: float
    accepted_workload: float
    fully_rejected: tuple[int, ...]
    fractional_task: int | None
    fraction: float


def fractional_relaxation(problem: RejectionProblem) -> FractionalRelaxation:
    """Solve the fractional relaxation exactly (see module docstring)."""
    g = _require_convex(problem.energy_fn)
    tasks = problem.tasks
    kern = get_kernel()
    order = kern.density_order(
        [t.cycles for t in tasks], [t.penalty for t in tasks]
    )
    cycles = [tasks[i].cycles for i in order]
    penalties = [tasks[i].penalty for i in order]

    total = sum(cycles)
    cap = problem.capacity
    w_hi = min(total, cap)
    w_lo = 0.0

    # Prefix sums: rejecting the first k tasks (density order) sheds
    # cum_c[k] cycles at cum_p[k] penalty.  Both kernels accumulate
    # strictly left to right, so the floats match the scalar loop bit
    # for bit.
    cum_c = [float(v) for v in kern.prefix_sums(cycles)]
    cum_p = [float(v) for v in kern.prefix_sums(penalties)]

    def shed_cost(rejected_cycles: float) -> float:
        """Min fractional penalty to shed *rejected_cycles* (piecewise lin)."""
        if rejected_cycles <= 0.0:
            return 0.0
        # Find the piece: smallest k with cum_c[k] >= rejected_cycles.
        lo, hi = 0, len(cum_c) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum_c[mid] >= rejected_cycles - 1e-15:
                hi = mid
            else:
                lo = mid + 1
        k = lo
        if k == 0:
            return 0.0
        partial = rejected_cycles - cum_c[k - 1]
        density = penalties[k - 1] / cycles[k - 1]
        return cum_p[k - 1] + max(partial, 0.0) * density

    def objective(w: float) -> float:
        return g.energy(min(max(w, 0.0), w_hi)) + shed_cost(total - w)

    # Candidates: every prefix breakpoint inside [w_lo, w_hi] plus the
    # golden-section optimum over the whole (convex) range.
    best_w, best_val = _minimize_convex(objective, w_lo, w_hi)
    for k in range(len(cum_c)):
        w = total - cum_c[k]
        if w_lo - 1e-12 <= w <= w_hi + 1e-12:
            w = min(max(w, w_lo), w_hi)
            val = objective(w)
            if val < best_val:
                best_w, best_val = w, val

    # Recover the witness: how many tasks are fully rejected at best_w.
    rejected_cycles = total - best_w
    fully: list[int] = []
    fractional: int | None = None
    fraction = 0.0
    remaining = rejected_cycles
    for rank, i in enumerate(order):
        c = cycles[rank]
        if remaining >= c - 1e-9:
            fully.append(i)
            remaining -= c
        elif remaining > 1e-9:
            fractional = i
            fraction = remaining / c
            remaining = 0.0
            break
        else:
            break
    return FractionalRelaxation(
        value=best_val,
        accepted_workload=best_w,
        fully_rejected=tuple(fully),
        fractional_task=fractional,
        fraction=fraction,
    )


def fractional_lower_bound(problem: RejectionProblem) -> float:
    """The relaxation optimum: a valid lower bound on REJECT-MIN."""
    return fractional_relaxation(problem).value


def lp_rounding(problem: RejectionProblem) -> RejectionSolution:
    """Round the fractional optimum's single fractional task both ways.

    Candidate A rejects the fractional task fully; candidate B accepts
    it (kept only when feasible).  Both retain the fully rejected prefix;
    the cheaper feasible candidate wins.
    """
    relaxed = fractional_relaxation(problem)
    everyone = set(range(problem.n))
    base_accept = everyone - set(relaxed.fully_rejected)

    candidates: list[RejectionSolution | None] = []

    if relaxed.fractional_task is None:
        if problem.is_feasible(base_accept):
            candidates.append(
                problem.solution(base_accept, algorithm="lp_rounding")
            )
    else:
        reject_it = base_accept - {relaxed.fractional_task}
        if problem.is_feasible(reject_it):
            candidates.append(problem.solution(reject_it, algorithm="lp_rounding"))
        if problem.is_feasible(base_accept):
            candidates.append(
                problem.solution(base_accept, algorithm="lp_rounding")
            )

    # Robust fallbacks: rejecting everything is always feasible, and the
    # density prefix one step past the optimum restores feasibility when
    # rounding up did not.
    if not candidates:
        order = sorted(
            range(problem.n), key=lambda i: problem.tasks[i].penalty_density
        )
        accepted = set(order)
        workload = problem.workload(accepted)
        for i in order:
            if problem.fits(workload):
                break
            accepted.discard(i)
            workload -= problem.tasks[i].cycles
        candidates.append(problem.solution(accepted, algorithm="lp_rounding"))
    return best_solution(*candidates)
