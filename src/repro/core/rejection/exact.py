"""Exact algorithms for REJECT-MIN: exhaustive search and branch-and-bound.

:func:`exhaustive` is the reference oracle the experiments normalise
against (as the companion text normalises against "the optimal task
assignment by exhaustive searches"); it enumerates all 2^n subsets with
incrementally maintained sums, so it is practical to n ≈ 20.

:func:`branch_and_bound` is exact as well but prunes with the fractional
relaxation (see :mod:`repro.core.rejection.relaxation`), typically
visiting a tiny fraction of the tree; it extends the exact range to the
mid-20s and serves as an independent implementation to cross-check the
oracle in tests.

Subset-sum tables, the feasible-subset scan, and the piecewise-linear
breakpoint sweep of the fractional bound run on the active array kernel
(:mod:`repro.kernels`).
"""

from __future__ import annotations

import math

from repro._validation import fits
from repro.core.rejection.greedy import greedy_marginal
from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.core.rejection.relaxation import _minimize_convex, _require_convex
from repro.kernels import get_kernel
from repro.kernels.base import suffix_shed_cost
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Hard guard: beyond this, subset enumeration is a programming error.
MAX_EXHAUSTIVE_TASKS = 24


def exhaustive(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by subset enumeration (n <= 24).

    Subset workload and penalty sums are built by iterative doubling
    (``sum[mask] = sum[mask without lowest bit] + value[lowest bit]``), so
    the enumeration costs O(2^n) arithmetic plus one ``g`` evaluation per
    *feasible* subset.
    """
    n = problem.n
    if n > MAX_EXHAUSTIVE_TASKS:
        raise ValueError(
            f"exhaustive search limited to {MAX_EXHAUSTIVE_TASKS} tasks, got {n}; "
            "use branch_and_bound or the DP/FPTAS algorithms instead"
        )
    cycles = [t.cycles for t in problem.tasks]
    penalties = [t.penalty for t in problem.tasks]
    total_penalty = sum(penalties)

    kern = get_kernel()
    with span("solve.exhaustive", n=n):
        workload = kern.subset_sums(cycles)
        accepted_penalty = kern.subset_sums(penalties)
        best_mask, _ = kern.exhaustive_best(
            workload,
            accepted_penalty,
            total_penalty,
            problem.capacity,
            problem.energy_fn,
        )
    obs_counters.emit("exhaustive", calls=1, subsets=1 << n)

    if best_mask < 0:  # pragma: no cover - the empty subset always fits
        best_mask = 0
    accepted = [i for i in range(n) if best_mask >> i & 1]
    return problem.solution(accepted, algorithm="exhaustive")


def _suffix_fractional_value(
    kern,
    energy_fn,
    cap: float,
    base_workload: float,
    base_penalty: float,
    densities: list[float],
    cum_c,
    cum_p,
    start: int,
) -> float:
    """Lower bound on completing a partial solution.

    The first ``start`` tasks (density order) are already decided with
    ``base_workload`` accepted cycles and ``base_penalty`` rejected
    penalty; the remaining suffix may be accepted fractionally.  Returns
    the convex-relaxation value of the best completion: the golden-section
    minimum of the continuous objective, tightened by the kernel's sweep
    over the shed-cost breakpoints.
    """
    suffix_total = cum_c[-1] - cum_c[start]
    room = cap - base_workload
    if room < -1e-12:
        return math.inf
    w_hi = min(suffix_total, max(room, 0.0))

    g_energy = energy_fn.energy

    def objective(w: float) -> float:
        return (
            base_penalty
            + g_energy(min(base_workload + w, cap))
            + suffix_shed_cost(cum_c, cum_p, densities, start, suffix_total - w)
        )

    _, val = _minimize_convex(objective, 0.0, w_hi)
    # Breakpoints of the piecewise-linear shed cost, for robustness.
    return min(
        val,
        kern.bound_breakpoint_min(
            cum_c,
            cum_p,
            densities,
            start,
            base_workload,
            base_penalty,
            w_hi,
            suffix_total,
            cap,
            energy_fn,
        ),
    )


def branch_and_bound(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by depth-first search with fractional pruning.

    Tasks are branched in non-decreasing penalty-density order (the order
    in which the relaxation rejects them), reject-branch first, so the
    incumbent drops quickly; every node is pruned against the fractional
    completion bound.
    """
    g_all = _require_convex(problem.energy_fn)
    cap = problem.capacity
    kern = get_kernel()

    order = kern.density_order(
        [t.cycles for t in problem.tasks],
        [t.penalty for t in problem.tasks],
    )
    cycles = [problem.tasks[i].cycles for i in order]
    penalties = [problem.tasks[i].penalty for i in order]
    densities = [p / c for p, c in zip(penalties, cycles)]
    # Plain-float prefix sums: the bound objective feeds these into the
    # scalar energy function, which must never see np.float64 (its ``**``
    # is not bit-equal to CPython's).  The values themselves are
    # identical on either kernel (left-to-right accumulation).
    cum_c = [float(x) for x in kern.prefix_sums(cycles)]
    cum_p = [float(x) for x in kern.prefix_sums(penalties)]

    incumbent = greedy_marginal(problem)
    best_cost = incumbent.cost
    best_accept_ranks: list[int] | None = None
    exact_g = problem.energy_fn.energy  # evaluate leaves with the true g

    n = problem.n
    chosen: list[bool] = [False] * n
    nodes = pruned = incumbents = 0

    def dfs(depth: int, workload: float, rejected_penalty: float) -> None:
        nonlocal best_cost, best_accept_ranks, nodes, pruned, incumbents
        nodes += 1
        if depth == n:
            cost = exact_g(min(workload, cap)) + rejected_penalty
            if cost < best_cost - 1e-15:
                best_cost = cost
                best_accept_ranks = [k for k in range(n) if chosen[k]]
                incumbents += 1
            return
        bound = _suffix_fractional_value(
            kern,
            g_all,
            cap,
            workload,
            rejected_penalty,
            densities,
            cum_c,
            cum_p,
            depth,
        )
        if bound >= best_cost - 1e-12:
            pruned += 1
            return
        # Reject branch first (matches the relaxation's preference).
        dfs(depth + 1, workload, rejected_penalty + penalties[depth])
        if fits(workload + cycles[depth], cap):
            chosen[depth] = True
            dfs(depth + 1, workload + cycles[depth], rejected_penalty)
            chosen[depth] = False

    with span("solve.branch_and_bound", n=n):
        dfs(0, 0.0, 0.0)
    obs_counters.emit(
        "branch_and_bound",
        calls=1,
        nodes=nodes,
        pruned=pruned,
        incumbents=incumbents,
    )

    if best_accept_ranks is None:
        # The greedy incumbent was already optimal.
        return problem.solution(
            incumbent.accepted, algorithm="branch_and_bound"
        )
    accepted = [order[k] for k in best_accept_ranks]
    solution = problem.solution(accepted, algorithm="branch_and_bound")
    # The DFS compares against the incumbent with a strict margin; keep
    # whichever is genuinely cheaper.
    if incumbent.cost < solution.cost:
        return problem.solution(incumbent.accepted, algorithm="branch_and_bound")
    return solution
