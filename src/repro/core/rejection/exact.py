"""Exact algorithms for REJECT-MIN: exhaustive search and branch-and-bound.

:func:`exhaustive` is the reference oracle the experiments normalise
against (as the companion text normalises against "the optimal task
assignment by exhaustive searches"); it enumerates all 2^n subsets with
incrementally maintained sums, so it is practical to n ≈ 20.

:func:`branch_and_bound` is exact as well but prunes with the fractional
relaxation (see :mod:`repro.core.rejection.relaxation`), typically
visiting a tiny fraction of the tree; it extends the exact range to the
mid-20s and serves as an independent implementation to cross-check the
oracle in tests.
"""

from __future__ import annotations

import math

from repro._validation import fits
from repro.core.rejection.greedy import greedy_marginal
from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.core.rejection.relaxation import _minimize_convex, _require_convex
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Hard guard: beyond this, subset enumeration is a programming error.
MAX_EXHAUSTIVE_TASKS = 24


def exhaustive(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by subset enumeration (n <= 24).

    Subset workload and penalty sums are built by iterative doubling
    (``sum[mask] = sum[mask without lowest bit] + value[lowest bit]``), so
    the enumeration costs O(2^n) arithmetic plus one ``g`` evaluation per
    *feasible* subset.
    """
    n = problem.n
    if n > MAX_EXHAUSTIVE_TASKS:
        raise ValueError(
            f"exhaustive search limited to {MAX_EXHAUSTIVE_TASKS} tasks, got {n}; "
            "use branch_and_bound or the DP/FPTAS algorithms instead"
        )
    cycles = [t.cycles for t in problem.tasks]
    penalties = [t.penalty for t in problem.tasks]
    total_penalty = sum(penalties)
    cap = problem.capacity
    g = problem.energy_fn

    size = 1 << n
    workload = [0.0] * size
    accepted_penalty = [0.0] * size
    for i in range(n):
        bit = 1 << i
        for mask in range(bit, bit << 1):
            rest = mask ^ bit
            workload[mask] = workload[rest] + cycles[i]
            accepted_penalty[mask] = accepted_penalty[rest] + penalties[i]

    best_mask = 0
    best_cost = math.inf
    with span("solve.exhaustive", n=n):
        for mask in range(size):
            w = workload[mask]
            if not fits(w, cap):
                continue
            cost = g.energy(min(w, cap)) + (
                total_penalty - accepted_penalty[mask]
            )
            if cost < best_cost:
                best_cost, best_mask = cost, mask
    obs_counters.emit("exhaustive", calls=1, subsets=size)

    accepted = [i for i in range(n) if best_mask >> i & 1]
    return problem.solution(accepted, algorithm="exhaustive")


def _suffix_fractional_value(
    g_energy,
    cap: float,
    base_workload: float,
    base_penalty: float,
    cycles: list[float],
    penalties: list[float],
    cum_c: list[float],
    cum_p: list[float],
    start: int,
) -> float:
    """Lower bound on completing a partial solution.

    The first ``start`` tasks (density order) are already decided with
    ``base_workload`` accepted cycles and ``base_penalty`` rejected
    penalty; the remaining suffix may be accepted fractionally.  Returns
    the convex-relaxation value of the best completion.
    """
    suffix_total = cum_c[-1] - cum_c[start]
    room = cap - base_workload
    if room < -1e-12:
        return math.inf
    w_hi = min(suffix_total, max(room, 0.0))

    def shed_cost(rejected: float) -> float:
        if rejected <= 0.0:
            return 0.0
        # Walk the suffix pieces (they are few at B&B depth; linear scan).
        acc_c, acc_p = 0.0, 0.0
        for k in range(start, len(cycles)):
            c = cycles[k]
            if acc_c + c >= rejected - 1e-15:
                return acc_p + (rejected - acc_c) * (penalties[k] / c)
            acc_c += c
            acc_p += penalties[k]
        return acc_p

    def objective(w: float) -> float:
        return (
            base_penalty
            + g_energy(min(base_workload + w, cap))
            + shed_cost(suffix_total - w)
        )

    _, val = _minimize_convex(objective, 0.0, w_hi)
    # Breakpoints of the piecewise-linear shed cost, for robustness.
    for k in range(start, len(cycles) + 1):
        w = suffix_total - (cum_c[k] - cum_c[start])
        if 0.0 <= w <= w_hi + 1e-12:
            val = min(val, objective(min(w, w_hi)))
    return val


def branch_and_bound(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by depth-first search with fractional pruning.

    Tasks are branched in non-decreasing penalty-density order (the order
    in which the relaxation rejects them), reject-branch first, so the
    incumbent drops quickly; every node is pruned against the fractional
    completion bound.
    """
    g_all = _require_convex(problem.energy_fn)
    g_energy = g_all.energy
    cap = problem.capacity

    order = sorted(
        range(problem.n), key=lambda i: problem.tasks[i].penalty_density
    )
    cycles = [problem.tasks[i].cycles for i in order]
    penalties = [problem.tasks[i].penalty for i in order]
    cum_c = [0.0]
    cum_p = [0.0]
    for c, p in zip(cycles, penalties):
        cum_c.append(cum_c[-1] + c)
        cum_p.append(cum_p[-1] + p)

    incumbent = greedy_marginal(problem)
    best_cost = incumbent.cost
    best_accept_ranks: list[int] | None = None
    exact_g = problem.energy_fn.energy  # evaluate leaves with the true g

    n = problem.n
    chosen: list[bool] = [False] * n
    nodes = pruned = incumbents = 0

    def dfs(depth: int, workload: float, rejected_penalty: float) -> None:
        nonlocal best_cost, best_accept_ranks, nodes, pruned, incumbents
        nodes += 1
        if depth == n:
            cost = exact_g(min(workload, cap)) + rejected_penalty
            if cost < best_cost - 1e-15:
                best_cost = cost
                best_accept_ranks = [k for k in range(n) if chosen[k]]
                incumbents += 1
            return
        bound = _suffix_fractional_value(
            g_energy,
            cap,
            workload,
            rejected_penalty,
            cycles,
            penalties,
            cum_c,
            cum_p,
            depth,
        )
        if bound >= best_cost - 1e-12:
            pruned += 1
            return
        # Reject branch first (matches the relaxation's preference).
        dfs(depth + 1, workload, rejected_penalty + penalties[depth])
        if fits(workload + cycles[depth], cap):
            chosen[depth] = True
            dfs(depth + 1, workload + cycles[depth], rejected_penalty)
            chosen[depth] = False

    with span("solve.branch_and_bound", n=n):
        dfs(0, 0.0, 0.0)
    obs_counters.emit(
        "branch_and_bound",
        calls=1,
        nodes=nodes,
        pruned=pruned,
        incumbents=incumbents,
    )

    if best_accept_ranks is None:
        # The greedy incumbent was already optimal.
        return problem.solution(
            incumbent.accepted, algorithm="branch_and_bound"
        )
    accepted = [order[k] for k in best_accept_ranks]
    solution = problem.solution(accepted, algorithm="branch_and_bound")
    # The DFS compares against the incumbent with a strict margin; keep
    # whichever is genuinely cheaper.
    if incumbent.cost < solution.cost:
        return problem.solution(incumbent.accepted, algorithm="branch_and_bound")
    return solution
