"""Executable NP-hardness reduction for REJECT-MIN.

The paper's contribution (per the companion text) includes "hardness
analysis"; this module makes the reconstruction's reduction concrete and
testable.

Reduction (SUBSET-SUM ≤p REJECT-MIN).  Given positive integers
``a1..an`` and a target ``B`` (with ``0 < B < Σai``), build a rejection
instance with

* ``ci = ai``;
* ``ρi = θ·ai`` where ``θ = g'(B)`` (the marginal energy at workload B) —
  evaluated numerically as a centred difference;
* unbounded capacity.

Every subset's cost depends only on its accepted workload ``W``:
``f(W) = g(W) + θ·(Σai − W)``.  Since ``g`` is strictly convex, ``f`` is
strictly convex with minimiser exactly ``B``; over the integers the
runner-up value is ``min(f(B−1), f(B+1))``.  Hence a subset summing to
exactly ``B`` exists **iff** the REJECT-MIN optimum is ``f(B)`` — i.e. at
most the midpoint threshold ``(f(B) + min(f(B±1)))/2``.

A polynomial-time REJECT-MIN solver would therefore decide SUBSET-SUM,
so REJECT-MIN is NP-hard (and, with cycles encoded in binary, the exact
DPs being pseudo-polynomial is the expected complementary fact).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.rejection.problem import RejectionProblem
from repro.energy.base import EnergyFunction
from repro.energy.continuous import ContinuousEnergyFunction
from repro.power.polynomial import PolynomialPowerModel
from repro.tasks.model import FrameTask, FrameTaskSet


@dataclass(frozen=True)
class SubsetSumReduction:
    """A REJECT-MIN instance encoding a SUBSET-SUM question.

    Attributes
    ----------
    problem:
        The constructed rejection instance.
    target_cost:
        ``f(B)`` — the optimum when the SUBSET-SUM answer is YES.
    threshold:
        Decision threshold: the answer is YES iff OPT <= threshold.
    """

    problem: RejectionProblem
    target_cost: float
    threshold: float

    def decide(self, optimum_cost: float) -> bool:
        """Interpret a REJECT-MIN optimum as the SUBSET-SUM answer."""
        return optimum_cost <= self.threshold


def _marginal(energy_fn: EnergyFunction, workload: float, step: float) -> float:
    """Centred-difference derivative of ``g`` at *workload*."""
    lo = max(workload - step, 0.0)
    hi = workload + step
    return (energy_fn.energy(hi) - energy_fn.energy(lo)) / (hi - lo)


def subset_sum_reduction(
    values: Sequence[int],
    target: int,
    *,
    energy_fn: EnergyFunction | None = None,
) -> SubsetSumReduction:
    """Build the REJECT-MIN instance for SUBSET-SUM(values, target).

    Parameters
    ----------
    values:
        Positive integers of the SUBSET-SUM instance.
    target:
        The target ``B`` with ``0 < B < sum(values)``.
    energy_fn:
        A *strictly convex* energy function covering workloads up to
        ``sum(values) + 1``; defaults to a cubic ideal processor wide
        enough for the instance.
    """
    if not values:
        raise ValueError("SUBSET-SUM needs at least one value")
    if any(v <= 0 or v != int(v) for v in values):
        raise ValueError(f"values must be positive integers, got {values!r}")
    total = int(sum(values))
    if not 0 < target < total:
        raise ValueError(
            f"target must satisfy 0 < target < sum(values) = {total}, "
            f"got {target!r}"
        )

    if energy_fn is None:
        # Deadline 1, speed cap above the total workload: capacity never
        # binds, exactly as the reduction requires.
        model = PolynomialPowerModel(beta1=1.0, alpha=3.0, s_max=float(total + 1))
        energy_fn = ContinuousEnergyFunction(model, deadline=1.0)
    if energy_fn.max_workload < total:
        raise ValueError(
            "energy_fn capacity must cover the full workload "
            f"({energy_fn.max_workload} < {total})"
        )

    theta = _marginal(energy_fn, float(target), 0.5)

    def f(workload: int) -> float:
        return energy_fn.energy(float(workload)) + theta * (total - workload)

    target_cost = f(target)
    runner_up = min(f(target - 1), f(target + 1))
    if runner_up <= target_cost:
        raise ValueError(
            "energy function is not strictly convex around the target; "
            "the reduction needs a strict gap"
        )
    threshold = (target_cost + runner_up) / 2.0

    tasks = FrameTaskSet(
        FrameTask(name=f"a{i}", cycles=float(v), penalty=theta * float(v))
        for i, v in enumerate(values)
    )
    problem = RejectionProblem(tasks=tasks, energy_fn=energy_fn)
    return SubsetSumReduction(
        problem=problem, target_cost=target_cost, threshold=threshold
    )
