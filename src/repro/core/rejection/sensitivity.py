"""Sensitivity analysis: what would it take to change a decision?

Designers do not just want the optimal accepted set; they want to know
how *robust* it is.  Two questions answered here, both exactly (the
optimum is re-computed with :func:`~repro.core.rejection.pareto.pareto_exact`,
so any non-decreasing energy function works):

* :func:`acceptance_price` — for a *rejected* task, the smallest penalty
  at which the optimum would start accepting it ("how much would this
  task have to matter to make the cut?");
* :func:`rejection_price` — for an *accepted* task, the largest penalty
  at which the optimum would start rejecting it ("how cheap would this
  task have to be before we'd drop it?").

Both are monotone in the perturbed penalty — raising a task's penalty
can only make accepting it more attractive — so a bisection over the
penalty axis is exact up to the requested tolerance.
"""

from __future__ import annotations

import math

from repro._validation import require_positive
from repro.core.rejection.pareto import pareto_exact
from repro.core.rejection.problem import RejectionProblem
from repro.tasks.model import FrameTask, FrameTaskSet


def _with_penalty(
    problem: RejectionProblem, index: int, penalty: float
) -> RejectionProblem:
    """A copy of *problem* with task *index*'s penalty replaced."""
    tasks = FrameTaskSet(
        FrameTask(name=t.name, cycles=t.cycles, penalty=penalty)
        if i == index
        else t
        for i, t in enumerate(problem.tasks)
    )
    return RejectionProblem(tasks=tasks, energy_fn=problem.energy_fn)


def _accepted_at(problem: RejectionProblem, index: int, penalty: float) -> bool:
    return index in pareto_exact(_with_penalty(problem, index, penalty)).accepted


def acceptance_price(
    problem: RejectionProblem,
    index: int,
    *,
    rel_tol: float = 1e-6,
    ceiling: float | None = None,
) -> float:
    """Smallest penalty at which the optimum accepts task *index*.

    Returns ``inf`` when the task can never be accepted (it exceeds the
    capacity alone, or no penalty below *ceiling* flips the decision —
    the latter cannot happen with a finite feasible task, since a large
    enough penalty always forces acceptance when the task fits).
    """
    if not 0 <= index < problem.n:
        raise IndexError(f"task index {index} out of range")
    require_positive("rel_tol", rel_tol)
    task = problem.tasks[index]
    if task.cycles > problem.capacity:
        return math.inf

    # Upper bracket: the marginal energy of the task at full capacity is
    # the most acceptance could ever save, so any penalty above it forces
    # acceptance; double until the decision flips (guarded).
    hi = ceiling if ceiling is not None else max(task.penalty, 1e-9)
    for _ in range(200):
        if _accepted_at(problem, index, hi):
            break
        hi *= 2.0
    else:  # pragma: no cover - a feasible task always flips eventually
        return math.inf
    lo = 0.0
    while hi - lo > rel_tol * max(hi, 1.0):
        mid = (lo + hi) / 2.0
        if _accepted_at(problem, index, mid):
            hi = mid
        else:
            lo = mid
    return hi


def rejection_price(
    problem: RejectionProblem,
    index: int,
    *,
    rel_tol: float = 1e-6,
) -> float:
    """Largest penalty at which the optimum rejects task *index*.

    Returns 0.0 when the task is accepted even penalty-free (rejecting
    it would save no energy worth having, e.g. under ample capacity and
    tiny workload); by monotonicity this is ``acceptance_price`` viewed
    from below, so the same bisection applies.
    """
    if not 0 <= index < problem.n:
        raise IndexError(f"task index {index} out of range")
    require_positive("rel_tol", rel_tol)
    if _accepted_at(problem, index, 0.0):
        return 0.0
    return acceptance_price(problem, index, rel_tol=rel_tol)
