"""Energy-efficient real-time task scheduling with task rejection.

The reconstruction of the DATE 2007 paper's contribution (see DESIGN.md
for the problem statement and the paper-text-mismatch note):

Problem objects
    :class:`RejectionProblem` / :class:`RejectionSolution` (frame-based,
    uniprocessor), :func:`periodic_problem` (periodic → frame reduction),
    :class:`MultiprocRejectionProblem` (partitioned multiprocessor).

Exact algorithms
    :func:`exhaustive`, :func:`branch_and_bound`, :func:`dp_cycles`,
    :func:`dp_penalty`, :func:`exhaustive_multiproc`.

Approximation
    :func:`fptas` (penalty-scaled DP with an additive ``ε·UB`` bound).

Heuristics
    :func:`greedy_density`, :func:`greedy_marginal`, :func:`lp_rounding`,
    :func:`accept_all_repair`, :func:`reject_random`; multiprocessor
    :func:`ltf_reject`, :func:`rand_reject`, :func:`global_greedy_reject`.

Bounds & hardness
    :func:`fractional_lower_bound`, :func:`pooled_lower_bound`,
    :func:`subset_sum_reduction` (executable NP-hardness reduction).
"""

from repro.core.rejection.problem import (
    CostBreakdown,
    RejectionProblem,
    RejectionSolution,
    best_solution,
)
from repro.core.rejection.exact import branch_and_bound, exhaustive
from repro.core.rejection.pareto import pareto_exact, pareto_frontier
from repro.core.rejection.sensitivity import acceptance_price, rejection_price
from repro.core.rejection.dp import dp_cycles, dp_penalty
from repro.core.rejection.fptas import fptas
from repro.core.rejection.greedy import (
    accept_all_repair,
    greedy_density,
    greedy_marginal,
    greedy_ordered,
    reject_random,
)
from repro.core.rejection.relaxation import (
    FractionalRelaxation,
    fractional_lower_bound,
    fractional_relaxation,
    lp_rounding,
)
from repro.core.rejection.hardness import SubsetSumReduction, subset_sum_reduction
from repro.core.rejection.periodic import (
    accepted_periodic_tasks,
    continuous_energy,
    edf_speed,
    leakage_aware_energy,
    periodic_problem,
)
from repro.core.rejection.aperiodic import (
    AperiodicJob,
    AperiodicProblem,
    AperiodicSolution,
    exhaustive_aperiodic,
    greedy_aperiodic,
)
from repro.core.rejection.heterogeneous import (
    HeterogeneousTask,
    accepted_heterogeneous_tasks,
    heterogeneous_energy,
    heterogeneous_problem,
)
from repro.core.rejection.online import (
    AcceptIfFeasible,
    MKFirmSkipPolicy,
    OnlinePolicy,
    RejectAll,
    ThresholdPolicy,
    run_online,
)
from repro.core.rejection.twope import (
    TwoPeProblem,
    TwoPeSolution,
    TwoPeTask,
    exhaustive_twope,
    greedy_twope,
    tasks_from_frame,
)
from repro.core.rejection.periodic_multiproc import (
    periodic_multiproc_problem,
    simulate_partitioned_solution,
)
from repro.core.rejection.multiproc import (
    MultiprocRejectionProblem,
    MultiprocRejectionSolution,
    exhaustive_multiproc,
    global_greedy_reject,
    ltf_reject,
    pooled_lower_bound,
    rand_reject,
)

__all__ = [
    "CostBreakdown",
    "RejectionProblem",
    "RejectionSolution",
    "best_solution",
    "exhaustive",
    "branch_and_bound",
    "pareto_exact",
    "pareto_frontier",
    "acceptance_price",
    "rejection_price",
    "dp_cycles",
    "dp_penalty",
    "fptas",
    "greedy_density",
    "greedy_marginal",
    "greedy_ordered",
    "accept_all_repair",
    "reject_random",
    "lp_rounding",
    "FractionalRelaxation",
    "fractional_relaxation",
    "fractional_lower_bound",
    "SubsetSumReduction",
    "subset_sum_reduction",
    "periodic_problem",
    "continuous_energy",
    "leakage_aware_energy",
    "edf_speed",
    "accepted_periodic_tasks",
    "MultiprocRejectionProblem",
    "MultiprocRejectionSolution",
    "ltf_reject",
    "rand_reject",
    "global_greedy_reject",
    "exhaustive_multiproc",
    "pooled_lower_bound",
    "periodic_multiproc_problem",
    "simulate_partitioned_solution",
    "OnlinePolicy",
    "ThresholdPolicy",
    "MKFirmSkipPolicy",
    "AcceptIfFeasible",
    "RejectAll",
    "run_online",
    "TwoPeProblem",
    "TwoPeSolution",
    "TwoPeTask",
    "exhaustive_twope",
    "greedy_twope",
    "tasks_from_frame",
    "AperiodicJob",
    "AperiodicProblem",
    "AperiodicSolution",
    "exhaustive_aperiodic",
    "greedy_aperiodic",
    "HeterogeneousTask",
    "heterogeneous_problem",
    "heterogeneous_energy",
    "accepted_heterogeneous_tasks",
]
