"""Problem and solution value objects for REJECT-MIN.

The reconstructed problem (DESIGN.md §1.1): choose an accepted subset
``A`` of the frame tasks with feasible workload, minimising

    cost(A) = g(Σ_{i∈A} ci)  +  Σ_{i∉A} ρi

where ``g`` is the processor's convex workload→energy function.  A
:class:`RejectionProblem` bundles the task set with the energy function;
every algorithm takes one and returns a :class:`RejectionSolution`, which
is *always* validated (feasibility + cost arithmetic) at construction.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro._validation import fits
from repro.energy.base import EnergyFunction
from repro.tasks.model import FrameTaskSet


@dataclass(frozen=True)
class CostBreakdown:
    """The two halves of a solution's cost."""

    energy: float
    penalty: float

    @property
    def total(self) -> float:
        """``energy + penalty``."""
        return self.energy + self.penalty


@dataclass(frozen=True)
class RejectionProblem:
    """An instance of REJECT-MIN.

    Attributes
    ----------
    tasks:
        The frame task set (cycles + rejection penalties).
    energy_fn:
        The processor's workload→energy function; its ``max_workload``
        is the feasibility cap ``s_max · D``.
    """

    tasks: FrameTaskSet
    energy_fn: EnergyFunction

    def __post_init__(self) -> None:
        if len(self.tasks) == 0:
            raise ValueError("a rejection problem needs at least one task")
        infeasible = [
            t.name
            for t in self.tasks
            if not fits(t.cycles, self.energy_fn.max_workload)
        ]
        # A single task larger than the capacity can never be accepted;
        # that is legal (it will always be rejected) but worth allowing
        # explicitly rather than crashing mid-algorithm.
        object.__setattr__(self, "_never_acceptable", frozenset(infeasible))

    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def capacity(self) -> float:
        """The feasibility cap on accepted cycles, ``s_max · D``."""
        return self.energy_fn.max_workload

    @property
    def never_acceptable(self) -> frozenset[str]:
        """Names of tasks individually larger than the capacity."""
        return self._never_acceptable  # type: ignore[attr-defined]

    @property
    def overload(self) -> float:
        """System load ``η = Σci / capacity`` (may be ``> 1`` or 0-div-safe)."""
        cap = self.capacity
        if not math.isfinite(cap) or cap == 0.0:
            return 0.0
        return self.tasks.total_cycles / cap

    # ------------------------------------------------------------------ #
    # Evaluation                                                         #
    # ------------------------------------------------------------------ #

    def workload(self, accepted: Iterable[int]) -> float:
        """Total cycles of the tasks at *accepted* indices."""
        return sum(self.tasks[i].cycles for i in set(accepted))

    def fits(self, load: float) -> bool:
        """True when *load* cycles fit the capacity (shared fp tolerance).

        The single capacity predicate every solver must use; mixing it
        with strict ``<=`` comparisons makes heuristics and exact solvers
        disagree on tasks whose cycles sit a few ulp above the capacity.
        """
        return fits(load, self.capacity)

    def is_feasible(self, accepted: Iterable[int]) -> bool:
        """True when the accepted workload fits the capacity."""
        return self.energy_fn.is_feasible(self.workload(accepted))

    def cost(self, accepted: Iterable[int]) -> CostBreakdown:
        """Cost of accepting exactly the tasks at *accepted* indices.

        Raises ValueError when the accepted workload is infeasible.
        """
        accepted_set = set(accepted)
        for i in accepted_set:
            if not 0 <= i < self.n:
                raise IndexError(f"task index {i} out of range")
        energy = self.energy_fn.energy(self.workload(accepted_set))
        penalty = sum(
            t.penalty for i, t in enumerate(self.tasks) if i not in accepted_set
        )
        return CostBreakdown(energy=energy, penalty=penalty)

    def solution(
        self, accepted: Iterable[int], *, algorithm: str, **meta: object
    ) -> "RejectionSolution":
        """Build a validated :class:`RejectionSolution`."""
        accepted_set = frozenset(accepted)
        breakdown = self.cost(accepted_set)
        return RejectionSolution(
            problem=self,
            accepted=accepted_set,
            breakdown=breakdown,
            algorithm=algorithm,
            meta=dict(meta),
        )

    def accept_all_cost(self) -> CostBreakdown | None:
        """Cost of accepting every task, or None when infeasible."""
        everyone = range(self.n)
        if not self.is_feasible(everyone):
            return None
        return self.cost(everyone)

    def reject_all_cost(self) -> CostBreakdown:
        """Cost of rejecting every task (a trivial upper bound)."""
        return self.cost(())


@dataclass(frozen=True, eq=False)
class RejectionSolution:
    """An accepted subset plus its validated cost.

    Instances are produced via :meth:`RejectionProblem.solution`, which
    guarantees feasibility; compare solutions by :attr:`cost`.
    """

    problem: RejectionProblem
    accepted: frozenset[int]
    breakdown: CostBreakdown
    algorithm: str
    meta: dict = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """Total cost ``energy + penalty``."""
        return self.breakdown.total

    @property
    def energy(self) -> float:
        """Energy part of the cost."""
        return self.breakdown.energy

    @property
    def penalty(self) -> float:
        """Penalty part of the cost."""
        return self.breakdown.penalty

    @property
    def rejected(self) -> frozenset[int]:
        """Indices of the rejected tasks."""
        return frozenset(range(self.problem.n)) - self.accepted

    @property
    def accepted_tasks(self) -> FrameTaskSet:
        """The accepted tasks as a task set."""
        return self.problem.tasks.subset(self.accepted)

    @property
    def rejected_tasks(self) -> FrameTaskSet:
        """The rejected tasks as a task set."""
        return self.problem.tasks.subset(self.rejected)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of tasks accepted."""
        return len(self.accepted) / self.problem.n

    @property
    def workload(self) -> float:
        """Accepted cycles."""
        return self.problem.workload(self.accepted)

    def speed_plan(self):
        """The speed plan executing the accepted workload optimally."""
        return self.problem.energy_fn.plan(self.workload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RejectionSolution(algorithm={self.algorithm!r}, "
            f"cost={self.cost:.6g}, accepted={sorted(self.accepted)})"
        )


def best_solution(*candidates: RejectionSolution | None) -> RejectionSolution:
    """The lowest-cost non-None candidate (raises when all are None)."""
    viable = [c for c in candidates if c is not None]
    if not viable:
        raise ValueError("no feasible candidate solution")
    return min(viable, key=lambda s: s.cost)
