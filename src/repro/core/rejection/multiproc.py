"""Task rejection on homogeneous partitioned multiprocessors.

The companion text places the rejection paper precisely here: with a
finite ``s_max``, even *deciding feasibility* of a frame task set on ``M``
processors is NP-complete, so overloaded systems must reject.  The
reconstruction's multiprocessor problem:

    choose accepted A and a partition of A over M identical processors
    with per-processor workload ≤ cap, minimising
    Σj g(Wj) + Σ_{i∉A} ρi.

Algorithms:

* :func:`ltf_reject`     — LTF partition with capacity (overflow tasks
  rejected), then a marginal-improvement pass that rejects any accepted
  task whose penalty is below the energy its processor saves.
* :func:`rand_reject`    — unsorted least-loaded first-fit (the RAND
  baseline), no improvement pass.
* :func:`global_greedy_reject` — LTF seed plus a *global* improvement
  loop picking the single best rejection anywhere in the system.
* :func:`exhaustive_multiproc` — optimal by enumerating all
  ``(M+1)^n`` assignments (tiny instances; the oracle for Fig R7's
  normalisation at small n and for the property tests).
* :func:`pooled_lower_bound` — Jensen-pooled fractional relaxation, the
  scalable normaliser.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

try:  # NumPy is optional: it only appears in rng type annotations here.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # annotations are strings (PEP 563); never evaluated

from repro._validation import fits
from repro.core.rejection.problem import CostBreakdown
from repro.core.rejection.relaxation import fractional_lower_bound
from repro.energy.base import EnergyFunction
from repro.kernels import get_kernel
from repro.multiproc.partition import (
    Partition,
    greedy_partition,
    ltf_partition,
)
from repro.multiproc.pooled import PooledEnergyFunction
from repro.core.rejection.problem import RejectionProblem
from repro.tasks.model import FrameTaskSet

#: Enumeration guard for the exhaustive oracle.
MAX_ENUM_ASSIGNMENTS = 3_000_000


@dataclass(frozen=True)
class MultiprocRejectionProblem:
    """An M-processor rejection instance (identical processors).

    Attributes
    ----------
    tasks:
        Frame task set (cycles + penalties).
    energy_fn:
        Per-processor workload→energy function; its ``max_workload`` is
        the per-processor capacity.
    m:
        Number of processors.
    """

    tasks: FrameTaskSet
    energy_fn: EnergyFunction
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"need at least one processor, got m={self.m!r}")
        if len(self.tasks) == 0:
            raise ValueError("a rejection problem needs at least one task")

    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def capacity(self) -> float:
        """Per-processor capacity ``s_max · D``."""
        return self.energy_fn.max_workload

    def fits(self, load: float) -> bool:
        """True when *load* fits one processor (shared fp tolerance)."""
        return fits(load, self.capacity)

    def cost_of(self, partition: Partition) -> CostBreakdown:
        """Cost of a partition (unassigned items are the rejected set)."""
        sizes = [t.cycles for t in self.tasks]
        table = get_kernel().energy_table(
            self.energy_fn, partition.loads(sizes)
        )
        # Left-to-right accumulation keeps the sum bit-identical to the
        # scalar generator it replaces (the kernel evaluates each load
        # with the same scalar energy call).
        energy = sum(float(e) for e in table)
        penalty = sum(self.tasks[i].penalty for i in partition.unassigned)
        return CostBreakdown(energy=energy, penalty=penalty)

    def solution(
        self, partition: Partition, *, algorithm: str
    ) -> "MultiprocRejectionSolution":
        """Validate *partition* and wrap it with its cost."""
        partition.validate(self.n)
        sizes = [t.cycles for t in self.tasks]
        for j, load in enumerate(partition.loads(sizes)):
            if not self.fits(load):
                raise ValueError(
                    f"processor {j} overloaded: {load} > {self.capacity}"
                )
        return MultiprocRejectionSolution(
            problem=self,
            partition=partition,
            breakdown=self.cost_of(partition),
            algorithm=algorithm,
        )


@dataclass(frozen=True, eq=False)
class MultiprocRejectionSolution:
    """A validated partition + rejection decision with its cost."""

    problem: MultiprocRejectionProblem
    partition: Partition
    breakdown: CostBreakdown
    algorithm: str

    @property
    def cost(self) -> float:
        """Total cost ``energy + penalty``."""
        return self.breakdown.total

    @property
    def rejected(self) -> frozenset[int]:
        """Indices of rejected tasks."""
        return frozenset(self.partition.unassigned)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of tasks accepted."""
        return 1.0 - len(self.partition.unassigned) / self.problem.n


def _improvement_pass(
    problem: MultiprocRejectionProblem,
    buckets: list[list[int]],
    rejected: list[int],
    *,
    single_best: bool,
) -> None:
    """Local search over reject / re-admit moves.

    A *reject* move drops an accepted task whose penalty is below the
    marginal energy its processor saves; a *re-admit* move brings a
    rejected task back onto the least-marginal-cost processor with room
    when its penalty exceeds the marginal energy there.  Re-admission
    matters: after heavy rejection the per-core loads (and hence marginal
    energies, convex in load) drop, and tasks rejected early can become
    profitable again.  Every accepted move strictly decreases the total
    cost, so the loop terminates.

    ``single_best=True`` applies only the single best move per round (the
    global-greedy variant); otherwise every improving move in a sweep is
    taken.
    """
    g = problem.energy_fn
    cap = problem.capacity
    sizes = [t.cycles for t in problem.tasks]
    loads = [sum(sizes[i] for i in bucket) for bucket in buckets]
    # Strict-improvement local search terminates; the guard is belt and
    # braces against fp-jitter cycling.
    for _ in range(10 * problem.n + 10):
        # (delta, kind, processor, task); delta < 0 improves.
        best: tuple[float, str, int, int] | None = None
        improved_any = False
        for j, bucket in enumerate(buckets):
            base = g.energy(loads[j])
            for i in list(bucket):
                task = problem.tasks[i]
                saving = base - g.energy(max(loads[j] - task.cycles, 0.0))
                delta = task.penalty - saving
                if delta < -1e-12:
                    if single_best:
                        if best is None or delta < best[0]:
                            best = (delta, "reject", j, i)
                    else:
                        bucket.remove(i)
                        rejected.append(i)
                        loads[j] = max(loads[j] - task.cycles, 0.0)
                        base = g.energy(loads[j])
                        improved_any = True
        for i in list(rejected):
            task = problem.tasks[i]
            target = None
            target_delta = 0.0
            for j in range(problem.m):
                if not fits(loads[j] + task.cycles, cap):
                    continue
                marginal = g.energy(loads[j] + task.cycles) - g.energy(loads[j])
                delta = marginal - task.penalty
                if delta < -1e-12 and (target is None or delta < target_delta):
                    target, target_delta = j, delta
            if target is None:
                continue
            if single_best:
                if best is None or target_delta < best[0]:
                    best = (target_delta, "admit", target, i)
            else:
                rejected.remove(i)
                buckets[target].append(i)
                loads[target] += task.cycles
                improved_any = True
        if single_best:
            if best is None:
                break
            _, kind, j, i = best
            if kind == "reject":
                buckets[j].remove(i)
                rejected.append(i)
                loads[j] = max(loads[j] - sizes[i], 0.0)
            else:
                rejected.remove(i)
                buckets[j].append(i)
                loads[j] += sizes[i]
        elif not improved_any:
            break


def _finish(
    problem: MultiprocRejectionProblem,
    buckets: list[list[int]],
    rejected: list[int],
    algorithm: str,
) -> MultiprocRejectionSolution:
    partition = Partition(
        assignments=tuple(tuple(b) for b in buckets),
        unassigned=tuple(sorted(rejected)),
    )
    return problem.solution(partition, algorithm=algorithm)


def ltf_reject(problem: MultiprocRejectionProblem) -> MultiprocRejectionSolution:
    """LTF with capacity, overflow rejected, per-processor improvement."""
    sizes = [t.cycles for t in problem.tasks]
    seed = ltf_partition(sizes, problem.m, capacity=problem.capacity)
    buckets = [list(b) for b in seed.assignments]
    rejected = list(seed.unassigned)
    _improvement_pass(problem, buckets, rejected, single_best=False)
    return _finish(problem, buckets, rejected, "ltf_reject")


def rand_reject(
    problem: MultiprocRejectionProblem,
    rng: np.random.Generator | None = None,
) -> MultiprocRejectionSolution:
    """Unsorted least-loaded admission (RAND), no energy awareness."""
    sizes = [t.cycles for t in problem.tasks]
    seed = greedy_partition(sizes, problem.m, capacity=problem.capacity, rng=rng)
    buckets = [list(b) for b in seed.assignments]
    rejected = list(seed.unassigned)
    return _finish(problem, buckets, rejected, "rand_reject")


def global_greedy_reject(
    problem: MultiprocRejectionProblem,
) -> MultiprocRejectionSolution:
    """LTF seed plus globally-best marginal rejection loop."""
    sizes = [t.cycles for t in problem.tasks]
    seed = ltf_partition(sizes, problem.m, capacity=problem.capacity)
    buckets = [list(b) for b in seed.assignments]
    rejected = list(seed.unassigned)
    _improvement_pass(problem, buckets, rejected, single_best=True)
    return _finish(problem, buckets, rejected, "global_greedy_reject")


def exhaustive_multiproc(
    problem: MultiprocRejectionProblem,
) -> MultiprocRejectionSolution:
    """Optimal assignment by enumeration over ``(M+1)^n`` choices.

    Identical processors make most assignments symmetric, but the guard
    is on the raw count; use only for oracle-sized instances.
    """
    count = (problem.m + 1) ** problem.n
    if count > MAX_ENUM_ASSIGNMENTS:
        raise ValueError(
            f"{count} assignments exceed the enumeration guard "
            f"({MAX_ENUM_ASSIGNMENTS}); use the heuristics or shrink n"
        )
    sizes = [t.cycles for t in problem.tasks]
    g = problem.energy_fn
    cap = problem.capacity
    best_cost = math.inf
    best_choice: tuple[int, ...] | None = None
    for choice in itertools.product(range(problem.m + 1), repeat=problem.n):
        loads = [0.0] * problem.m
        penalty = 0.0
        feasible = True
        for i, c in enumerate(choice):
            if c == 0:
                penalty += problem.tasks[i].penalty
            else:
                loads[c - 1] += sizes[i]
                if not fits(loads[c - 1], cap):
                    feasible = False
                    break
        if not feasible:
            continue
        cost = penalty + sum(g.energy(w) for w in loads)
        if cost < best_cost:
            best_cost = cost
            best_choice = choice
    if best_choice is None:  # pragma: no cover - all-reject always feasible
        raise AssertionError("no feasible assignment found")
    buckets: list[list[int]] = [[] for _ in range(problem.m)]
    rejected: list[int] = []
    for i, c in enumerate(best_choice):
        if c == 0:
            rejected.append(i)
        else:
            buckets[c - 1].append(i)
    return _finish(problem, buckets, rejected, "exhaustive_multiproc")


def pooled_lower_bound(problem: MultiprocRejectionProblem) -> float:
    """Valid lower bound: fractional relaxation on the Jensen pool."""
    pooled = RejectionProblem(
        tasks=problem.tasks,
        energy_fn=PooledEnergyFunction(problem.energy_fn, problem.m),
    )
    return fractional_lower_bound(pooled)
