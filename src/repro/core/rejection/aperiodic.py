"""Task rejection for aperiodic jobs with individual windows.

The frame-based model gives every task the same ``[0, D]`` window; real
aperiodic workloads (Yao et al.'s model, the setting of Irani et al.'s
leakage work cited by the companion text) give each job its own arrival
and deadline.  The rejection problem generalises naturally:

    choose accepted A ⊆ jobs, minimise  E_YDS(A) + Σ_{j∉A} ρj

where ``E_YDS(A)`` is the energy of the *optimal* (YDS) speed schedule
for the accepted jobs — computable exactly with the substrate in
:mod:`repro.speedopt.yds`.  A speed cap makes feasibility non-trivial:
a subset is admissible iff its YDS peak speed fits under ``s_max``.

The frame-based machinery does not transfer (the energy now depends on
*which* jobs are accepted, not just their total cycles), so this module
provides:

* :func:`exhaustive_aperiodic` — 2ⁿ oracle over YDS evaluations;
* :func:`greedy_aperiodic` — density-ordered greedy with exact YDS
  marginals and a feasibility-repair phase (drop jobs from the critical
  interval while the peak speed exceeds the cap).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro._validation import require_nonnegative
from repro.core.rejection.problem import CostBreakdown
from repro.power.base import PowerModel
from repro.speedopt.yds import Job, YdsSchedule, yds_schedule

#: Enumeration guard for the 2^n YDS oracle.
MAX_ENUM_SUBSETS = 1 << 18


@dataclass(frozen=True)
class AperiodicJob:
    """An aperiodic job with a rejection penalty."""

    name: str
    arrival: float
    deadline: float
    cycles: float
    penalty: float

    def __post_init__(self) -> None:
        require_nonnegative("penalty", self.penalty)
        # Window/cycles validation is delegated to the YDS Job.
        Job(
            name=self.name,
            arrival=self.arrival,
            deadline=self.deadline,
            cycles=self.cycles,
        )

    def as_yds_job(self) -> Job:
        """The YDS view of this job."""
        return Job(
            name=self.name,
            arrival=self.arrival,
            deadline=self.deadline,
            cycles=self.cycles,
        )

    @property
    def density(self) -> float:
        """Window-filling speed ``c / (d − a)``."""
        return self.cycles / (self.deadline - self.arrival)


@dataclass(frozen=True)
class AperiodicProblem:
    """An aperiodic rejection instance.

    Attributes
    ----------
    jobs:
        The jobs (order defines indices; names must be unique).
    power_model:
        Convex processor; its ``s_max`` caps the YDS peak speed.
    """

    jobs: tuple[AperiodicJob, ...]
    power_model: PowerModel

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("an aperiodic problem needs at least one job")
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique")

    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    def schedule_of(self, accepted: Sequence[int]) -> YdsSchedule:
        """The YDS-optimal schedule of the accepted subset."""
        return yds_schedule(self.jobs[i].as_yds_job() for i in sorted(set(accepted)))

    def is_feasible(self, accepted: Sequence[int]) -> bool:
        """True when the accepted subset's peak YDS speed fits ``s_max``."""
        subset = sorted(set(accepted))
        if not subset:
            return True
        peak = self.schedule_of(subset).max_speed
        return peak <= self.power_model.s_max * (1 + 1e-9)

    def cost_of(self, accepted: Sequence[int]) -> CostBreakdown:
        """Cost (YDS energy + penalties); raises when infeasible."""
        accepted_set = sorted(set(accepted))
        schedule = self.schedule_of(accepted_set)
        if schedule.max_speed > self.power_model.s_max * (1 + 1e-9):
            raise ValueError(
                f"accepted subset needs peak speed {schedule.max_speed} "
                f"> s_max {self.power_model.s_max}"
            )
        energy = schedule.energy(self.power_model)
        rejected = set(range(self.n)) - set(accepted_set)
        penalty = sum(self.jobs[i].penalty for i in rejected)
        return CostBreakdown(energy=energy, penalty=penalty)


@dataclass(frozen=True, eq=False)
class AperiodicSolution:
    """A validated accepted subset with its cost and schedule."""

    problem: AperiodicProblem
    accepted: frozenset[int]
    breakdown: CostBreakdown
    algorithm: str

    @property
    def cost(self) -> float:
        """Total cost."""
        return self.breakdown.total

    @property
    def rejected(self) -> frozenset[int]:
        """Rejected indices."""
        return frozenset(range(self.problem.n)) - self.accepted

    def schedule(self) -> YdsSchedule:
        """The accepted subset's optimal schedule."""
        return self.problem.schedule_of(sorted(self.accepted))


def _solution(problem, accepted, algorithm) -> AperiodicSolution:
    accepted = frozenset(accepted)
    return AperiodicSolution(
        problem=problem,
        accepted=accepted,
        breakdown=problem.cost_of(sorted(accepted)),
        algorithm=algorithm,
    )


def exhaustive_aperiodic(problem: AperiodicProblem) -> AperiodicSolution:
    """Optimal by subset enumeration with YDS evaluation (n ≤ 18)."""
    if (1 << problem.n) > MAX_ENUM_SUBSETS:
        raise ValueError(
            f"2^{problem.n} subsets exceed the enumeration guard; "
            "use greedy_aperiodic"
        )
    total_penalty = sum(j.penalty for j in problem.jobs)
    s_max = problem.power_model.s_max
    best_cost = math.inf
    best: tuple[int, ...] = ()
    for r in range(problem.n + 1):
        for combo in itertools.combinations(range(problem.n), r):
            schedule = problem.schedule_of(combo)
            if schedule.max_speed > s_max * (1 + 1e-9):
                continue
            penalty = total_penalty - sum(problem.jobs[i].penalty for i in combo)
            cost = schedule.energy(problem.power_model) + penalty
            if cost < best_cost:
                best_cost, best = cost, combo
    return _solution(problem, best, "exhaustive_aperiodic")


def greedy_aperiodic(problem: AperiodicProblem) -> AperiodicSolution:
    """Density-ordered greedy with exact YDS marginals.

    Phase 1 (repair): while the accepted set's peak speed exceeds
    ``s_max``, drop the cheapest-penalty-per-cycle job among those whose
    windows intersect the current critical (peak-intensity) interval —
    only they can lower the peak.

    Phase 2 (improve): in ascending penalty-per-cycle order, reject any
    job whose penalty is below its exact marginal YDS energy
    (``E(A) − E(A∖{j})``), recomputing the schedule after each change.
    """
    s_max = problem.power_model.s_max
    accepted = set(range(problem.n))

    # Phase 1 — feasibility repair at the critical interval.
    while accepted:
        schedule = problem.schedule_of(sorted(accepted))
        if schedule.max_speed <= s_max * (1 + 1e-9):
            break
        peak = schedule.max_speed
        window_slices = [s for s in schedule.slices if s.speed >= peak * (1 - 1e-9)]
        lo = min(s.start for s in window_slices)
        hi = max(s.end for s in window_slices)
        culprits = [
            i
            for i in accepted
            if problem.jobs[i].arrival < hi - 1e-12
            and problem.jobs[i].deadline > lo + 1e-12
        ]
        victim = min(
            culprits,
            key=lambda i: problem.jobs[i].penalty / problem.jobs[i].cycles,
        )
        accepted.discard(victim)

    # Phase 2 — economic rejection with exact marginals.
    energy_of = lambda subset: problem.schedule_of(sorted(subset)).energy(
        problem.power_model
    )
    current_energy = energy_of(accepted) if accepted else 0.0
    order = sorted(
        accepted, key=lambda i: problem.jobs[i].penalty / problem.jobs[i].cycles
    )
    for i in order:
        if i not in accepted:
            continue
        without = accepted - {i}
        reduced = energy_of(without) if without else 0.0
        saving = current_energy - reduced
        if saving > problem.jobs[i].penalty + 1e-12:
            accepted = without
            current_energy = reduced
    return _solution(problem, accepted, "greedy_aperiodic")
