"""Periodic task rejection on partitioned multiprocessors.

Combines the two reductions already in the library: periodic tasks
reduce to frame tasks over the hyper-period (utilisation × L cycles,
EDF-optimal constant speed per processor), and the frame-based
multiprocessor problem handles partitioning + rejection.  The result:
periodic rejection on M identical cores with per-core EDF — validated
end-to-end by co-simulating every core with the event-driven simulator.
"""

from __future__ import annotations

from repro.core.rejection.multiproc import (
    MultiprocRejectionProblem,
    MultiprocRejectionSolution,
)
from repro.core.rejection.periodic import EnergyFactory
from repro.power.base import PowerModel
from repro.sched.edf import SimulationResult, simulate_edf
from repro.tasks.model import FrameTask, FrameTaskSet, PeriodicTaskSet


def periodic_multiproc_problem(
    tasks: PeriodicTaskSet,
    energy_factory: EnergyFactory,
    m: int,
    *,
    horizon: float | None = None,
) -> MultiprocRejectionProblem:
    """Reduce periodic multiprocessor rejection to the frame problem.

    Parameters
    ----------
    tasks:
        The periodic task set (order preserved → indices map through).
    energy_factory:
        Per-processor workload→energy function for the hyper-period
        horizon (e.g. :func:`repro.core.rejection.continuous_energy`).
    m:
        Number of identical processors.
    horizon:
        Override for the hyper-period (see
        :func:`repro.core.rejection.periodic_problem`).
    """
    if len(tasks) == 0:
        raise ValueError("a rejection problem needs at least one task")
    length = float(tasks.hyper_period) if horizon is None else float(horizon)
    if length <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    frame = FrameTaskSet(
        FrameTask(
            name=t.name,
            cycles=t.utilization * length,
            penalty=t.penalty,
        )
        for t in tasks
    )
    return MultiprocRejectionProblem(
        tasks=frame, energy_fn=energy_factory(length), m=m
    )


def simulate_partitioned_solution(
    solution: MultiprocRejectionSolution,
    tasks: PeriodicTaskSet,
    power_model: PowerModel,
    **simulate_kwargs,
) -> list[SimulationResult | None]:
    """Co-simulate every core of a periodic multiprocessor solution.

    Each core runs its accepted periodic tasks under EDF at the
    energy-optimal constant speed (the core's utilisation, floored at
    the critical speed when a dormant mode is in play — pass ``speed=``
    through *simulate_kwargs* to override).  Returns one
    :class:`~repro.sched.SimulationResult` per core (None for idle
    cores); the caller asserts `not result.missed` and compares energies
    against the analytic solution.
    """
    if solution.problem.n != len(tasks):
        raise ValueError(
            "solution and task set disagree on size "
            f"({solution.problem.n} != {len(tasks)})"
        )
    for i in range(len(tasks)):
        if solution.problem.tasks[i].name != tasks[i].name:
            raise ValueError(f"task order mismatch at index {i}")

    horizon = solution.problem.energy_fn.deadline
    results: list[SimulationResult | None] = []
    for bucket in solution.partition.assignments:
        if not bucket:
            results.append(None)
            continue
        subset = tasks.subset(bucket)
        kwargs = dict(simulate_kwargs)
        kwargs.setdefault("speed", subset.total_utilization)
        kwargs.setdefault("horizon", horizon)
        results.append(simulate_edf(subset, power_model, **kwargs))
    return results
