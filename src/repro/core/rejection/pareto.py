"""Exact rejection by Pareto-frontier enumeration (Nemhauser–Ullmann).

The cost of an accepted subset is ``g(w) + p`` with ``w`` the accepted
cycles and ``p`` the rejected penalty; since ``g`` is non-decreasing, a
partial solution with both smaller-or-equal ``w`` *and* ``p`` than
another can never end up worse — it **dominates**.  Processing tasks one
at a time and keeping only the non-dominated ``(w, p)`` states yields an
exact algorithm that:

* needs **no integrality** of cycles or penalties (unlike the DPs),
* needs **no convexity** of ``g`` (unlike branch-and-bound's fractional
  pruning — this is the exact method of choice for the kinked
  dormant-enable model with ``e_sw > 0``),
* runs in ``O(n · F)`` where ``F`` is the frontier size — worst-case
  exponential (the problem is NP-hard), but typically far smaller; a
  guard caps it explicitly rather than thrashing.

This is the strongest general-purpose exact solver in the library and
the recommended oracle beyond exhaustive range.
"""

from __future__ import annotations

import math

from repro._validation import fits
from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Refuse to grow the frontier beyond this many states.
MAX_FRONTIER = 2_000_000


class _State:
    """A non-dominated partial solution (linked for reconstruction)."""

    __slots__ = ("workload", "penalty", "parent", "accepted_last")

    def __init__(
        self,
        workload: float,
        penalty: float,
        parent: "_State | None",
        accepted_last: bool,
    ) -> None:
        self.workload = workload
        self.penalty = penalty
        self.parent = parent
        self.accepted_last = accepted_last


def _merge_prune(
    reject_branch: list[_State], accept_branch: list[_State]
) -> list[_State]:
    """Merge two frontiers (each sorted by workload) and drop dominance.

    Both inputs are sorted by increasing workload with strictly
    decreasing penalty (frontier invariant); the merged output restores
    the invariant in one linear pass.
    """
    merged: list[_State] = []
    i = j = 0
    while i < len(reject_branch) or j < len(accept_branch):
        if j >= len(accept_branch):
            candidate = reject_branch[i]
            i += 1
        elif i >= len(reject_branch):
            candidate = accept_branch[j]
            j += 1
        elif (
            reject_branch[i].workload,
            reject_branch[i].penalty,
        ) <= (accept_branch[j].workload, accept_branch[j].penalty):
            candidate = reject_branch[i]
            i += 1
        else:
            candidate = accept_branch[j]
            j += 1
        # The merge emits states in non-decreasing (workload, penalty)
        # order, so the candidate's workload is always >= the last kept
        # state's; it survives only with a strictly smaller penalty.
        if merged and candidate.penalty >= merged[-1].penalty:
            continue
        merged.append(candidate)
    return merged


def _build_frontier(
    problem: RejectionProblem, *, label: str, guard_hint: str = ""
) -> list[_State]:
    """Run the dominance-pruned sweep; emits frontier-size counters.

    Shared by :func:`pareto_frontier` and :func:`pareto_exact` (they
    differ only in how the final frontier is consumed).
    """
    cap = problem.capacity
    frontier: list[_State] = [_State(0.0, 0.0, None, False)]
    states = 1
    peak = 1
    with span(f"solve.{label}", n=problem.n):
        for task in problem.tasks:
            reject_branch = [
                _State(s.workload, s.penalty + task.penalty, s, False)
                for s in frontier
            ]
            accept_branch = [
                _State(s.workload + task.cycles, s.penalty, s, True)
                for s in frontier
                if fits(s.workload + task.cycles, cap)
            ]
            states += len(reject_branch) + len(accept_branch)
            frontier = _merge_prune(reject_branch, accept_branch)
            if len(frontier) > peak:
                peak = len(frontier)
            if len(frontier) > MAX_FRONTIER:
                raise ValueError(
                    f"Pareto frontier exceeded {MAX_FRONTIER} states"
                    + guard_hint
                )
    obs_counters.emit(
        label,
        calls=1,
        states=states,
        peak_frontier=peak,
        final_frontier=len(frontier),
    )
    return frontier


def pareto_frontier(
    problem: RejectionProblem,
) -> list[tuple[float, float, float]]:
    """The full accepted-workload/penalty trade-off curve.

    Returns the non-dominated ``(workload, rejected_penalty, cost)``
    triples in increasing-workload order — the design-space view behind
    :func:`pareto_exact` (whose answer is the triple with minimum cost).
    Useful for "what would accepting more work cost me" exploration.
    """
    cap = problem.capacity
    frontier = _build_frontier(problem, label="pareto_frontier")
    g = problem.energy_fn
    return [
        (s.workload, s.penalty, g.energy(min(s.workload, cap)) + s.penalty)
        for s in frontier
    ]


def pareto_exact(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by dominance-pruned state enumeration.

    Exact for any non-decreasing energy function (convexity not
    required) and arbitrary float cycles/penalties.  Raises when the
    frontier exceeds :data:`MAX_FRONTIER` states (an adversarial
    instance; fall back to the FPTAS).
    """
    cap = problem.capacity
    frontier = _build_frontier(
        problem,
        label="pareto_exact",
        guard_hint="; use fptas() for this instance",
    )

    g = problem.energy_fn
    best_state: _State | None = None
    best_cost = math.inf
    for state in frontier:
        cost = g.energy(min(state.workload, cap)) + state.penalty
        if cost < best_cost:
            best_cost, best_state = cost, state

    assert best_state is not None  # frontier always contains reject-all
    accepted: list[int] = []
    state = best_state
    for i in range(problem.n - 1, -1, -1):
        if state.accepted_last:
            accepted.append(i)
        state = state.parent  # type: ignore[assignment]
    return problem.solution(
        accepted, algorithm="pareto_exact", frontier=len(frontier)
    )
