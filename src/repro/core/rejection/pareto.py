"""Exact rejection by Pareto-frontier enumeration (Nemhauser–Ullmann).

The cost of an accepted subset is ``g(w) + p`` with ``w`` the accepted
cycles and ``p`` the rejected penalty; since ``g`` is non-decreasing, a
partial solution with both smaller-or-equal ``w`` *and* ``p`` than
another can never end up worse — it **dominates**.  Processing tasks one
at a time and keeping only the non-dominated ``(w, p)`` states yields an
exact algorithm that:

* needs **no integrality** of cycles or penalties (unlike the DPs),
* needs **no convexity** of ``g`` (unlike branch-and-bound's fractional
  pruning — this is the exact method of choice for the kinked
  dormant-enable model with ``e_sw > 0``),
* runs in ``O(n · F)`` where ``F`` is the frontier size — worst-case
  exponential (the problem is NP-hard), but typically far smaller; a
  guard caps it explicitly rather than thrashing.

The frontier lives as parallel workload/penalty sequences native to the
active array kernel (:mod:`repro.kernels`), whose
:meth:`~repro.kernels.Kernel.frontier_step` does the extend-and-prune
sweep; per-task parent/decision rows are kept for O(n) reconstruction.

This is the strongest general-purpose exact solver in the library and
the recommended oracle beyond exhaustive range.
"""

from __future__ import annotations

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.kernels import get_kernel
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Refuse to grow the frontier beyond this many states.
MAX_FRONTIER = 2_000_000

#: Reconstruction history: per task, (parent indices, accepted bits).
_History = list[tuple["object", "object"]]


def _build_frontier(
    problem: RejectionProblem, *, label: str, guard_hint: str = ""
):
    """Run the dominance-pruned sweep; emits frontier-size counters.

    Shared by :func:`pareto_frontier` and :func:`pareto_exact` (they
    differ only in how the final frontier is consumed).  Returns the
    final ``(workloads, penalties)`` frontier (kernel-native sequences,
    workload ascending / penalty strictly descending) and the per-task
    reconstruction history.
    """
    kern = get_kernel()
    cap = problem.capacity
    workloads = [0.0]
    penalties = [0.0]
    history: _History = []
    states = 1
    peak = 1
    with span(f"solve.{label}", n=problem.n):
        for task in problem.tasks:
            step = kern.frontier_step(
                workloads, penalties, task.cycles, task.penalty, cap
            )
            states += step.candidates
            workloads, penalties = step.workloads, step.penalties
            history.append((step.sources, step.accepted))
            if len(step) > peak:
                peak = len(step)
            if len(step) > MAX_FRONTIER:
                raise ValueError(
                    f"Pareto frontier exceeded {MAX_FRONTIER} states"
                    + guard_hint
                )
    obs_counters.emit(
        label,
        calls=1,
        states=states,
        peak_frontier=peak,
        final_frontier=len(workloads),
    )
    return workloads, penalties, history


def pareto_frontier(
    problem: RejectionProblem,
) -> list[tuple[float, float, float]]:
    """The full accepted-workload/penalty trade-off curve.

    Returns the non-dominated ``(workload, rejected_penalty, cost)``
    triples in increasing-workload order — the design-space view behind
    :func:`pareto_exact` (whose answer is the triple with minimum cost).
    Useful for "what would accepting more work cost me" exploration.
    """
    cap = problem.capacity
    workloads, penalties, _ = _build_frontier(problem, label="pareto_frontier")
    kern = get_kernel()
    energies = kern.energy_table(
        problem.energy_fn, [min(float(w), cap) for w in workloads]
    )
    return [
        (float(w), float(p), float(e) + float(p))
        for w, p, e in zip(workloads, penalties, energies)
    ]


def pareto_exact(problem: RejectionProblem) -> RejectionSolution:
    """Optimal solution by dominance-pruned state enumeration.

    Exact for any non-decreasing energy function (convexity not
    required) and arbitrary float cycles/penalties.  Raises when the
    frontier exceeds :data:`MAX_FRONTIER` states (an adversarial
    instance; fall back to the FPTAS).
    """
    workloads, penalties, history = _build_frontier(
        problem,
        label="pareto_exact",
        guard_hint="; use fptas() for this instance",
    )

    kern = get_kernel()
    best, _ = kern.frontier_best(
        workloads, penalties, problem.capacity, problem.energy_fn
    )
    assert best >= 0  # the frontier always contains reject-all

    accepted: list[int] = []
    idx = best
    for i in range(problem.n - 1, -1, -1):
        sources, took = history[i]
        if took[idx]:
            accepted.append(i)
        idx = int(sources[idx])
    return problem.solution(
        accepted, algorithm="pareto_exact", frontier=len(workloads)
    )
