"""Pseudo-polynomial dynamic programs for REJECT-MIN.

Two classic axes:

* :func:`dp_cycles`  — table indexed by accepted cycles.  Exact when
  task cycles are integer multiples of the quantum; with a coarser
  quantum it becomes the granularity-ablation algorithm of Tab R3
  (cycles are rounded *up*, so the returned subset is always feasible
  for the true instance).
* :func:`dp_penalty` — table indexed by rejected penalty, storing the
  maximum shed cycles per penalty level.  Exact for integer penalties;
  it is also the engine of the FPTAS (:mod:`repro.core.rejection.fptas`),
  which feeds it scaled penalties.

Both run in O(n · table) with the row relaxations and final level scans
delegated to the active array kernel (:mod:`repro.kernels`), keeping the
per-task decision bits for O(n) reconstruction.
"""

from __future__ import annotations

import math

from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.kernels import get_kernel
from repro.obs import counters as obs_counters
from repro.obs.trace import span

#: Refuse to allocate DP tables beyond this many cells (per stage).
MAX_TABLE_CELLS = 50_000_000


def _check_table(cells: int, what: str) -> None:
    if cells > MAX_TABLE_CELLS:
        raise ValueError(
            f"{what} needs {cells} DP cells (> {MAX_TABLE_CELLS}); "
            "coarsen the quantum or use the FPTAS"
        )


def dp_cycles(
    problem: RejectionProblem,
    *,
    quantum: float = 1.0,
    round_cycles: bool = False,
) -> RejectionSolution:
    """DP over accepted cycles; exact on quantum-aligned instances.

    Parameters
    ----------
    quantum:
        Cycle grid size.  Every task's cycles must be an integer multiple
        of it (to 1e-9 relative) unless ``round_cycles`` is set.
    round_cycles:
        Round task cycles *up* to the grid.  The DP then optimises the
        rounded instance; the reconstructed subset is evaluated against
        the true instance (rounding up can only shrink the accepted set's
        true workload, so feasibility is preserved).
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum!r}")
    units: list[int] = []
    for task in problem.tasks:
        exact = task.cycles / quantum
        if round_cycles:
            units.append(max(1, math.ceil(exact - 1e-9)))
        else:
            nearest = round(exact)
            if nearest < 1 or abs(exact - nearest) > 1e-9 * max(1.0, exact):
                raise ValueError(
                    f"task {task.name!r} cycles {task.cycles} are not a "
                    f"multiple of quantum {quantum}; pass round_cycles=True"
                )
            units.append(int(nearest))

    cap_units = int(math.floor(problem.capacity / quantum + 1e-9))
    w_max = min(sum(units), cap_units)
    _check_table((w_max + 1), "dp_cycles")

    kern = get_kernel()
    # dp[w] = min rejected penalty with accepted cycles exactly w units.
    with span("solve.dp_cycles", n=problem.n, width=w_max + 1):
        dp = kern.dp_init(w_max + 1, math.inf)
        decisions = []
        for u, task in zip(units, problem.tasks):
            dp, take = kern.dp_relax_min(dp, u, task.penalty)
            decisions.append(take)
        best_w, _ = kern.best_workload_level(
            dp, quantum, problem.capacity, problem.energy_fn
        )
    obs_counters.emit(
        "dp_cycles",
        calls=1,
        width=w_max + 1,
        cells=(w_max + 1) * problem.n,
    )

    if best_w < 0:  # pragma: no cover - dp[0] is always finite
        raise AssertionError("empty DP table")

    accepted: list[int] = []
    w = best_w
    for i in range(problem.n - 1, -1, -1):
        if decisions[i][w]:
            accepted.append(i)
            w -= units[i]
    if w != 0:  # pragma: no cover - reconstruction invariant
        raise AssertionError("DP reconstruction did not return to the origin")
    return problem.solution(
        accepted,
        algorithm="dp_cycles",
        quantum=quantum,
        rounded=round_cycles,
    )


def _dp_over_penalties(units: list[int], cycles: list[float], kern=None):
    """Core penalty-indexed DP.

    ``dp[p]`` is the maximum cycles shed by rejecting a subset with
    integer penalty sum exactly ``p`` (−inf when unreachable); decision
    bit rows say, per task, whether the entry at ``p`` rejected it.
    Rows and decision bits are kernel-native sequences.
    """
    kern = kern or get_kernel()
    p_max = sum(units)
    _check_table(p_max + 1, "dp_penalty")
    dp = kern.dp_init(p_max + 1, -math.inf)
    decisions = []
    for u, c in zip(units, cycles):
        dp, take = kern.dp_relax_max(dp, u, c)
        decisions.append(take)
    return dp, decisions


def dp_penalty(problem: RejectionProblem, *, quantum: float = 1.0) -> RejectionSolution:
    """DP over rejected penalty; exact on quantum-aligned penalties.

    For each reachable integer penalty level ``p`` the table stores the
    maximum cycles that can be shed at that price; since the energy
    function is non-decreasing, shedding the most cycles is optimal per
    level, and the answer is the cheapest
    ``g(C − shed) + p·quantum`` over feasible levels.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum!r}")
    units: list[int] = []
    for task in problem.tasks:
        exact = task.penalty / quantum
        nearest = round(exact)
        if abs(exact - nearest) > 1e-9 * max(1.0, exact):
            raise ValueError(
                f"task {task.name!r} penalty {task.penalty} is not a "
                f"multiple of quantum {quantum}"
            )
        units.append(int(nearest))

    cycles = [t.cycles for t in problem.tasks]
    total = sum(cycles)
    kern = get_kernel()
    with span("solve.dp_penalty", n=problem.n, width=sum(units) + 1):
        dp, decisions = _dp_over_penalties(units, cycles, kern)
        best_p, _ = kern.best_penalty_level(
            dp, total, problem.capacity, problem.energy_fn, quantum
        )
    obs_counters.emit(
        "dp_penalty",
        calls=1,
        width=sum(units) + 1,
        cells=(sum(units) + 1) * problem.n,
    )

    if best_p < 0:
        raise ValueError(
            "no feasible penalty level; every subset exceeds the capacity "
            "(this cannot happen: rejecting everything is always feasible)"
        )

    rejected: set[int] = set()
    p = best_p
    for i in range(problem.n - 1, -1, -1):
        if decisions[i][p]:
            rejected.add(i)
            p -= units[i]
    if p != 0:  # pragma: no cover - reconstruction invariant
        raise AssertionError("DP reconstruction did not return to the origin")
    accepted = [i for i in range(problem.n) if i not in rejected]
    return problem.solution(accepted, algorithm="dp_penalty", quantum=quantum)
