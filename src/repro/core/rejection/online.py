"""Online task rejection (admission control).

The offline problem assumes the whole task set is known before any
decision; real admission controllers see tasks one at a time and must
accept or reject *irrevocably* on arrival.  This module is the
reconstruction's online extension:

* a policy sees tasks in arrival order, knows the energy function and
  the remaining capacity, and must keep the accepted set feasible at all
  times;
* at the end the system pays the usual offline cost
  ``g(W_accepted) + Σ rejected ρ``.

Policies
--------

:class:`ThresholdPolicy`
    Accept a feasible task iff its *marginal* energy at the current
    accepted workload is at most ``θ·ρ``.  ``θ = 1`` is the myopic
    break-even rule; ``θ < 1`` holds capacity back for later, more
    valuable arrivals; ``θ > 1`` over-admits.  The marginal energy is
    evaluated pessimistically at the *capacity-filling* speed when
    ``reserve`` is set, modelling a controller that expects the frame to
    fill up.

:class:`AcceptIfFeasible`
    First-fit: admit everything that fits (the online analogue of
    accept-all).

:class:`RejectAll`
    Trivial baseline (pays every penalty, zero energy).

Use :func:`run_online` to drive any policy over a problem's task order
(or a permutation) and get a validated offline
:class:`~repro.core.rejection.problem.RejectionSolution` back, directly
comparable to the offline optimum — the basis of the empirical
competitive-ratio experiment (Fig R9).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

try:  # NumPy is optional: it only appears in rng type annotations here.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # annotations are strings (PEP 563); never evaluated

from collections import deque

from repro._validation import fits, require_positive
from repro.core.rejection.problem import RejectionProblem, RejectionSolution
from repro.energy.base import EnergyFunction
from repro.hetero.mk import MKSpec
from repro.obs import counters as obs_counters
from repro.obs.trace import span
from repro.tasks.model import FrameTask


class OnlinePolicy(ABC):
    """An irrevocable accept/reject rule applied at each arrival."""

    name: str = "online"

    @abstractmethod
    def admit(
        self,
        task: FrameTask,
        accepted_workload: float,
        energy_fn: EnergyFunction,
    ) -> bool:
        """Decide for *task* given the current accepted workload.

        The caller guarantees the task *fits* (feasibility is enforced
        outside the policy); the policy only expresses preference.
        """


class AcceptIfFeasible(OnlinePolicy):
    """Admit everything that fits (first-fit admission)."""

    name = "accept_if_feasible"

    def admit(self, task, accepted_workload, energy_fn) -> bool:
        return True


class RejectAll(OnlinePolicy):
    """Reject everything (trivial baseline)."""

    name = "reject_all"

    def admit(self, task, accepted_workload, energy_fn) -> bool:
        return False


class ThresholdPolicy(OnlinePolicy):
    """Marginal-energy threshold rule (see module docstring).

    Parameters
    ----------
    theta:
        Acceptance threshold (> 0): admit iff
        ``marginal_energy <= theta * penalty``.
    reserve:
        When set, the marginal energy is priced not at the current
        workload but midway between it and the capacity
        (``w' = (W + cap)/2``): the controller anticipates that later
        arrivals will fill roughly half the remaining headroom, so early
        cycles are priced closer to what they will eventually cost.
        Pricing at the full capacity instead would reject everything
        (the top-of-curve marginal exceeds any reasonable penalty);
        pricing at the current workload (``reserve=False``) under-prices
        early arrivals under overload.
    """

    def __init__(self, theta: float = 1.0, *, reserve: bool = False) -> None:
        require_positive("theta", theta)
        self._theta = float(theta)
        self._reserve = bool(reserve)
        suffix = "r" if reserve else ""
        self.name = f"threshold({self._theta:g}{suffix})"

    @property
    def theta(self) -> float:
        """The acceptance threshold."""
        return self._theta

    def admit(self, task, accepted_workload, energy_fn) -> bool:
        if self._reserve:
            cap = energy_fn.max_workload
            anchor = (accepted_workload + cap) / 2.0
            hi = min(anchor + task.cycles, cap)
            lo = max(hi - task.cycles, 0.0)
            marginal = energy_fn.energy(hi) - energy_fn.energy(lo)
        else:
            marginal = energy_fn.marginal(accepted_workload, task.cycles)
        return marginal <= self._theta * task.penalty


class MKFirmSkipPolicy(OnlinePolicy):
    """(m,k)-firm skip admission: shed only when the window can afford it.

    Baskaran & Thambidurai's weakly-hard semantics as an online rejection
    rule: out of any ``k`` consecutive *decisions this policy makes*, at
    least ``m`` must be accepts.  A job may be skipped iff the previous
    ``k-1`` decisions already contain ``m`` accepts (pre-stream history
    padded as accepts — see :mod:`repro.hetero.mk` for the correctness
    argument); when skipping is allowed, the usual marginal-energy
    threshold rule expresses the preference, and when it is not, the job
    is a *mandatory accept*.

    The policy is **stateful** (it remembers its own decision window), so
    replaying a decision log must construct a fresh instance — which is
    exactly what :func:`policy_from_spec` gives every call site.  Note the
    window tracks decisions the policy was *consulted* for: arrivals the
    surrounding controller drops on its own (deadline-infeasible,
    capacity-infeasible with no shed plan, budget-refused) never reach
    ``admit`` and are forced skips outside the weakly-hard contract.

    Parameters
    ----------
    m, k:
        The (m,k)-firm window: ``1 <= m <= k``.  ``m == k`` (and the
        degenerate ``(1,1)``) never skip.
    theta, reserve:
        The :class:`ThresholdPolicy` preference applied when skipping is
        allowed.
    """

    def __init__(
        self,
        m: int = 1,
        k: int = 2,
        *,
        theta: float = 1.0,
        reserve: bool = False,
    ) -> None:
        self._spec = MKSpec(m=m, k=k)
        self._pref = ThresholdPolicy(theta, reserve=reserve)
        self._window: deque[bool] = deque(maxlen=self._spec.k - 1)
        #: Full decision stream (True = accept), for invariant checks.
        self.decisions: list[bool] = []
        suffix = "r" if reserve else ""
        self.name = f"mk({m},{k};{theta:g}{suffix})"

    @property
    def spec(self) -> MKSpec:
        """The (m,k) window specification."""
        return self._spec

    def skip_allowed(self) -> bool:
        """True when skipping the next job cannot violate any window."""
        maxlen = self._window.maxlen or 0
        accepts = sum(self._window) + (maxlen - len(self._window))
        return accepts >= self._spec.m

    def admit(self, task, accepted_workload, energy_fn) -> bool:
        if self.skip_allowed():
            decision = self._pref.admit(task, accepted_workload, energy_fn)
        else:
            decision = True
        self._window.append(decision)
        self.decisions.append(decision)
        return decision


#: Policy spellings accepted by :func:`policy_from_spec` (the shared
#: vocabulary of ``repro serve --policy`` and ``repro sim --policy``).
POLICY_CHOICES = ("accept", "threshold", "reject_all", "mk")


def policy_from_spec(
    name: str = "accept",
    *,
    theta: float = 1.0,
    reserve: bool = False,
    mk_m: int = 1,
    mk_k: int = 2,
) -> OnlinePolicy:
    """Build the policy object a ``--policy`` spelling names.

    The single construction point for admission policies at every hook
    site — the live server and the arrival simulator both resolve their
    CLI flags through here, so the *same spelling* always yields the
    *same policy object semantics* (and therefore the same decisions on
    the same arrival sequence).
    """
    if name == "accept":
        return AcceptIfFeasible()
    if name == "threshold":
        return ThresholdPolicy(theta, reserve=reserve)
    if name == "reject_all":
        return RejectAll()
    if name == "mk":
        return MKFirmSkipPolicy(mk_m, mk_k, theta=theta, reserve=reserve)
    raise ValueError(
        f"unknown policy {name!r}; choose from {', '.join(POLICY_CHOICES)}"
    )


def run_online(
    problem: RejectionProblem,
    policy: OnlinePolicy,
    *,
    order: Sequence[int] | None = None,
    rng: np.random.Generator | None = None,
) -> RejectionSolution:
    """Drive *policy* over the arrival sequence and score it offline.

    Parameters
    ----------
    problem:
        The (offline) instance; its task order is the arrival order
        unless *order* or *rng* (shuffle) is given.
    policy:
        The admission rule.
    order:
        Explicit arrival order (a permutation of task indices).
    rng:
        Shuffle the arrival order (ignored when *order* is given).
    """
    if order is not None:
        sequence = [int(i) for i in order]
        if sorted(sequence) != list(range(problem.n)):
            raise ValueError("order must be a permutation of task indices")
    elif rng is not None:
        sequence = [int(i) for i in rng.permutation(problem.n)]
    else:
        sequence = list(range(problem.n))

    cap = problem.capacity
    energy_fn = problem.energy_fn
    accepted: list[int] = []
    workload = 0.0
    infeasible = 0
    with span("solve.online", n=problem.n, policy=policy.name):
        for i in sequence:
            task = problem.tasks[i]
            if not fits(workload + task.cycles, cap):
                infeasible += 1
                continue  # cannot admit: would break feasibility forever
            if policy.admit(task, workload, energy_fn):
                accepted.append(i)
                workload += task.cycles
    obs_counters.emit(
        "online",
        calls=1,
        arrivals=len(sequence),
        admitted=len(accepted),
        infeasible=infeasible,
    )
    return problem.solution(accepted, algorithm=f"online:{policy.name}")
