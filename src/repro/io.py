"""JSON serialisation of task sets, problem specs, and solutions.

Instances travel as plain JSON so they can be versioned, diffed, shared
with other tools, and replayed bit-exactly:

* :func:`save_instance` / :func:`load_instance` — a frame-based
  rejection instance: tasks + platform (power model, deadline, energy
  model kind, dormant parameters).  Both uniprocessor
  (:class:`~repro.core.rejection.problem.RejectionProblem`) and
  partitioned-multiprocessor
  (:class:`~repro.core.rejection.multiproc.MultiprocRejectionProblem`)
  instances round-trip; a multiprocessor payload carries
  ``"processors": m`` and uniprocessor payloads are unchanged, so files
  written by earlier versions still load;
* :func:`solution_to_dict` — a solved instance's decision + cost
  breakdown + speed plan (uniprocessor) or per-processor assignment
  (multiprocessor), ready for ``json.dump``.

The schema is deliberately explicit (no pickling, no class names) so a
non-Python consumer can read it; ``schema_version`` guards evolution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.rejection import (
    MultiprocRejectionProblem,
    MultiprocRejectionSolution,
    RejectionProblem,
    RejectionSolution,
)
from repro.energy import (
    ContinuousEnergyFunction,
    CriticalSpeedEnergyFunction,
    DiscreteEnergyFunction,
    EnergyFunction,
)
from repro.power import DormantMode, PolynomialPowerModel
from repro.power.discrete import SpeedLevels
from repro.tasks import FrameTask, FrameTaskSet

SCHEMA_VERSION = 1


def _power_model_to_dict(model: PolynomialPowerModel) -> dict[str, Any]:
    if not isinstance(model, PolynomialPowerModel):
        raise TypeError(
            "only PolynomialPowerModel instances are serialisable "
            f"(got {type(model).__name__}); CMOS models can be fitted to "
            "a polynomial for interchange"
        )
    return {
        "kind": "polynomial",
        "beta0": model.beta0,
        "beta1": model.beta1,
        "alpha": model.alpha,
        "s_min": model.s_min,
        "s_max": model.s_max,
    }


def _power_model_from_dict(data: dict[str, Any]) -> PolynomialPowerModel:
    if data.get("kind") != "polynomial":
        raise ValueError(f"unsupported power model kind {data.get('kind')!r}")
    return PolynomialPowerModel(
        beta0=data["beta0"],
        beta1=data["beta1"],
        alpha=data["alpha"],
        s_min=data.get("s_min", 0.0),
        s_max=data["s_max"],
    )


def _energy_fn_to_dict(fn: EnergyFunction) -> dict[str, Any]:
    if isinstance(fn, ContinuousEnergyFunction):
        return {
            "kind": "continuous",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
        }
    if isinstance(fn, CriticalSpeedEnergyFunction):
        return {
            "kind": "critical",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
            "dormant": {"t_sw": fn.dormant.t_sw, "e_sw": fn.dormant.e_sw},
        }
    if isinstance(fn, DiscreteEnergyFunction):
        data: dict[str, Any] = {
            "kind": "discrete",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
            "levels": list(fn.levels.speeds),
            "dormant_enable": fn.dormant_enable,
        }
        if fn.dormant is not None:
            data["dormant"] = {"t_sw": fn.dormant.t_sw, "e_sw": fn.dormant.e_sw}
        return data
    raise TypeError(f"cannot serialise energy function {type(fn).__name__}")


def _energy_fn_from_dict(data: dict[str, Any]) -> EnergyFunction:
    kind = data.get("kind")
    model = _power_model_from_dict(data["power_model"])
    deadline = data["deadline"]
    if kind == "continuous":
        return ContinuousEnergyFunction(model, deadline)
    if kind == "critical":
        dormant = data.get("dormant", {})
        return CriticalSpeedEnergyFunction(
            model,
            deadline,
            dormant=DormantMode(
                t_sw=dormant.get("t_sw", 0.0), e_sw=dormant.get("e_sw", 0.0)
            ),
        )
    if kind == "discrete":
        dormant: DormantMode | None = None
        if data.get("dormant_enable"):
            overheads = data.get("dormant", {})
            dormant = DormantMode(
                t_sw=overheads.get("t_sw", 0.0),
                e_sw=overheads.get("e_sw", 0.0),
            )
        return DiscreteEnergyFunction(
            model,
            SpeedLevels(data["levels"]),
            deadline,
            dormant=dormant,
        )
    raise ValueError(f"unsupported energy function kind {kind!r}")


def instance_to_dict(
    problem: RejectionProblem | MultiprocRejectionProblem,
) -> dict[str, Any]:
    """The JSON-ready representation of a rejection instance.

    A :class:`MultiprocRejectionProblem` additionally carries
    ``"processors": m``; uniprocessor payloads omit the key entirely, so
    the uniprocessor schema is byte-identical to earlier versions.
    """
    if not isinstance(problem, (RejectionProblem, MultiprocRejectionProblem)):
        raise TypeError(
            f"cannot serialise instance of type {type(problem).__name__}"
        )
    data: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "tasks": [
            {"name": t.name, "cycles": t.cycles, "penalty": t.penalty}
            for t in problem.tasks
        ],
        "energy_fn": _energy_fn_to_dict(problem.energy_fn),
    }
    if isinstance(problem, MultiprocRejectionProblem):
        data["processors"] = int(problem.m)
    return data


def instance_from_dict(
    data: dict[str, Any],
) -> RejectionProblem | MultiprocRejectionProblem:
    """Rebuild a rejection instance from :func:`instance_to_dict` output.

    Payloads with a ``"processors"`` key come back as
    :class:`MultiprocRejectionProblem`; all others as
    :class:`RejectionProblem`.
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    tasks = FrameTaskSet(
        FrameTask(name=t["name"], cycles=t["cycles"], penalty=t["penalty"])
        for t in data["tasks"]
    )
    energy_fn = _energy_fn_from_dict(data["energy_fn"])
    if "processors" in data:
        m = data["processors"]
        if not isinstance(m, int) or isinstance(m, bool):
            raise ValueError(f"processors must be an integer, got {m!r}")
        return MultiprocRejectionProblem(tasks=tasks, energy_fn=energy_fn, m=m)
    return RejectionProblem(tasks=tasks, energy_fn=energy_fn)


def save_instance(
    problem: RejectionProblem | MultiprocRejectionProblem, path: str | Path
) -> Path:
    """Write *problem* to *path* as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(instance_to_dict(problem), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_instance(
    path: str | Path,
) -> RejectionProblem | MultiprocRejectionProblem:
    """Read a rejection instance written by :func:`save_instance`."""
    with open(path) as fh:
        return instance_from_dict(json.load(fh))


def solution_to_dict(
    solution: RejectionSolution | MultiprocRejectionSolution,
) -> dict[str, Any]:
    """JSON-ready dump of a solution.

    Uniprocessor solutions carry the optimal speed plan; multiprocessor
    solutions carry the per-processor assignment and loads instead.
    """
    if isinstance(solution, MultiprocRejectionSolution):
        return _multiproc_solution_to_dict(solution)
    plan = solution.speed_plan()
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm": solution.algorithm,
        "cost": solution.cost,
        "energy": solution.energy,
        "penalty": solution.penalty,
        "accepted": sorted(t.name for t in solution.accepted_tasks),
        "rejected": sorted(t.name for t in solution.rejected_tasks),
        "acceptance_ratio": solution.acceptance_ratio,
        "speed_plan": [
            {
                "start": seg.start,
                "end": seg.end,
                "speed": seg.speed,
            }
            for seg in plan.segments
        ],
        "meta": {k: v for k, v in solution.meta.items()},
    }


def _multiproc_solution_to_dict(
    solution: MultiprocRejectionSolution,
) -> dict[str, Any]:
    problem = solution.problem
    tasks = problem.tasks
    sizes = [t.cycles for t in tasks]
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm": solution.algorithm,
        "cost": solution.cost,
        "energy": solution.breakdown.energy,
        "penalty": solution.breakdown.penalty,
        "processors": problem.m,
        "accepted": sorted(
            tasks[i].name
            for i in range(problem.n)
            if i not in solution.rejected
        ),
        "rejected": sorted(tasks[i].name for i in solution.rejected),
        "acceptance_ratio": solution.acceptance_ratio,
        "assignment": [
            sorted(tasks[i].name for i in bucket)
            for bucket in solution.partition.assignments
        ],
        "loads": solution.partition.loads(sizes),
    }
