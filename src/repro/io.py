"""JSON serialisation of task sets, problem specs, and solutions.

Instances travel as plain JSON so they can be versioned, diffed, shared
with other tools, and replayed bit-exactly:

* :func:`save_instance` / :func:`load_instance` — a frame-based
  rejection instance: tasks + platform (power model, deadline, energy
  model kind, dormant parameters).  Both uniprocessor
  (:class:`~repro.core.rejection.problem.RejectionProblem`) and
  partitioned-multiprocessor
  (:class:`~repro.core.rejection.multiproc.MultiprocRejectionProblem`)
  instances round-trip; a multiprocessor payload carries
  ``"processors": m`` and uniprocessor payloads are unchanged, so files
  written by earlier versions still load;
* :func:`solution_to_dict` — a solved instance's decision + cost
  breakdown + speed plan (uniprocessor) or per-processor assignment
  (multiprocessor / heterogeneous), ready for ``json.dump``.

Heterogeneous instances (:class:`repro.hetero.HeteroRejectionProblem`)
carry a ``"platform"`` object (deadline + typed core groups, each with
its own power model) instead of a single ``"energy_fn"``; stochastic
instances (:class:`repro.hetero.StochasticHeteroProblem`) additionally
spell each task's ``"cycles"`` as a distribution object
(``{"kind": ..., "params": [...]}``), and either may attach an
``"mk": {"m": ..., "k": ...}`` skip spec.  Uniprocessor and
homogeneous-multiprocessor payloads are byte-identical to earlier
versions.

Malformed files fail with a one-line ``ValueError`` naming the
offending field (``instance field tasks[3].cycles: ...``) — the CLI
prints it verbatim and exits 2.

The schema is deliberately explicit (no pickling, no class names) so a
non-Python consumer can read it; ``schema_version`` guards evolution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.rejection import (
    MultiprocRejectionProblem,
    MultiprocRejectionSolution,
    RejectionProblem,
    RejectionSolution,
)
from repro.energy import (
    ContinuousEnergyFunction,
    CriticalSpeedEnergyFunction,
    DiscreteEnergyFunction,
    EnergyFunction,
)
from repro.hetero.assign import HeteroRejectionProblem, HeteroRejectionSolution
from repro.hetero.mk import MKSpec
from repro.hetero.platform import CoreType, Platform
from repro.hetero.stochastic import (
    CycleDistribution,
    StochasticHeteroProblem,
    StochasticTask,
)
from repro.power import DormantMode, PolynomialPowerModel
from repro.power.discrete import SpeedLevels
from repro.tasks import FrameTask, FrameTaskSet

SCHEMA_VERSION = 1

#: Union of everything :func:`save_instance` / :func:`load_instance` handle.
AnyProblem = (
    "RejectionProblem | MultiprocRejectionProblem | HeteroRejectionProblem"
    " | StochasticHeteroProblem"
)


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _require(data: Any, key: str, path: str) -> Any:
    """Fetch ``data[key]`` with a field-path error on failure.

    Every structural access in the readers goes through here (or the
    sibling checks below), so a malformed file always dies with a
    single line naming the offending field instead of a raw
    ``KeyError`` traceback.  *path* is the dotted location of *data*
    itself (empty at the document root).
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"instance field {path or '<root>'}: expected an object, "
            f"got {type(data).__name__}"
        )
    if key not in data:
        raise ValueError(f"instance field {_join(path, key)}: missing")
    return data[key]


def _require_number(data: Any, key: str, path: str) -> float:
    value = _require(data, key, path)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"instance field {_join(path, key)}: expected a number, "
            f"got {value!r}"
        )
    return value


def _require_int(data: Any, key: str, path: str) -> int:
    value = _require(data, key, path)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"instance field {_join(path, key)}: expected an integer, "
            f"got {value!r}"
        )
    return value


def _require_str(data: Any, key: str, path: str) -> str:
    value = _require(data, key, path)
    if not isinstance(value, str):
        raise ValueError(
            f"instance field {_join(path, key)}: expected a string, "
            f"got {value!r}"
        )
    return value


def _require_list(data: Any, key: str, path: str) -> list:
    value = _require(data, key, path)
    if not isinstance(value, list):
        raise ValueError(
            f"instance field {_join(path, key)}: expected a list, "
            f"got {type(value).__name__}"
        )
    return value


def _power_model_to_dict(model: PolynomialPowerModel) -> dict[str, Any]:
    if not isinstance(model, PolynomialPowerModel):
        raise TypeError(
            "only PolynomialPowerModel instances are serialisable "
            f"(got {type(model).__name__}); CMOS models can be fitted to "
            "a polynomial for interchange"
        )
    return {
        "kind": "polynomial",
        "beta0": model.beta0,
        "beta1": model.beta1,
        "alpha": model.alpha,
        "s_min": model.s_min,
        "s_max": model.s_max,
    }


def _power_model_from_dict(
    data: dict[str, Any], path: str = "power_model"
) -> PolynomialPowerModel:
    kind = _require(data, "kind", path)
    if kind != "polynomial":
        raise ValueError(
            f"instance field {path}.kind: unsupported power model kind {kind!r}"
        )
    return PolynomialPowerModel(
        beta0=_require_number(data, "beta0", path),
        beta1=_require_number(data, "beta1", path),
        alpha=_require_number(data, "alpha", path),
        s_min=data.get("s_min", 0.0),
        s_max=_require_number(data, "s_max", path),
    )


def _energy_fn_to_dict(fn: EnergyFunction) -> dict[str, Any]:
    if isinstance(fn, ContinuousEnergyFunction):
        return {
            "kind": "continuous",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
        }
    if isinstance(fn, CriticalSpeedEnergyFunction):
        return {
            "kind": "critical",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
            "dormant": {"t_sw": fn.dormant.t_sw, "e_sw": fn.dormant.e_sw},
        }
    if isinstance(fn, DiscreteEnergyFunction):
        data: dict[str, Any] = {
            "kind": "discrete",
            "deadline": fn.deadline,
            "power_model": _power_model_to_dict(fn.power_model),
            "levels": list(fn.levels.speeds),
            "dormant_enable": fn.dormant_enable,
        }
        if fn.dormant is not None:
            data["dormant"] = {"t_sw": fn.dormant.t_sw, "e_sw": fn.dormant.e_sw}
        return data
    raise TypeError(f"cannot serialise energy function {type(fn).__name__}")


def _energy_fn_from_dict(
    data: dict[str, Any], path: str = "energy_fn"
) -> EnergyFunction:
    kind = _require(data, "kind", path)
    model = _power_model_from_dict(
        _require(data, "power_model", path), f"{path}.power_model"
    )
    deadline = _require_number(data, "deadline", path)
    if kind == "continuous":
        return ContinuousEnergyFunction(model, deadline)
    if kind == "critical":
        dormant = data.get("dormant", {})
        return CriticalSpeedEnergyFunction(
            model,
            deadline,
            dormant=DormantMode(
                t_sw=dormant.get("t_sw", 0.0), e_sw=dormant.get("e_sw", 0.0)
            ),
        )
    if kind == "discrete":
        dormant: DormantMode | None = None
        if data.get("dormant_enable"):
            overheads = data.get("dormant", {})
            dormant = DormantMode(
                t_sw=overheads.get("t_sw", 0.0),
                e_sw=overheads.get("e_sw", 0.0),
            )
        return DiscreteEnergyFunction(
            model,
            SpeedLevels(_require_list(data, "levels", path)),
            deadline,
            dormant=dormant,
        )
    raise ValueError(
        f"instance field {path}.kind: unsupported energy function kind {kind!r}"
    )


def _platform_to_dict(platform: Platform) -> dict[str, Any]:
    return {
        "deadline": platform.deadline,
        "core_types": [
            {
                "name": t.name,
                "count": t.count,
                "power_model": _power_model_to_dict(t.power_model),
            }
            for t in platform.core_types
        ],
    }


def _platform_from_dict(data: dict[str, Any], path: str = "platform") -> Platform:
    deadline = _require_number(data, "deadline", path)
    entries = _require_list(data, "core_types", path)
    core_types: list[CoreType] = []
    for idx, entry in enumerate(entries):
        sub = f"{path}.core_types[{idx}]"
        core_types.append(
            CoreType(
                name=_require_str(entry, "name", sub),
                count=_require_int(entry, "count", sub),
                power_model=_power_model_from_dict(
                    _require(entry, "power_model", sub), f"{sub}.power_model"
                ),
            )
        )
    try:
        return Platform(core_types=tuple(core_types), deadline=deadline)
    except ValueError as exc:
        raise ValueError(f"instance field {path}: {exc}") from None


def _mk_from_dict(data: Any, path: str = "mk") -> MKSpec:
    try:
        return MKSpec.from_dict(data)
    except ValueError as exc:
        raise ValueError(f"instance field {path}: {exc}") from None


def instance_to_dict(problem) -> dict[str, Any]:
    """The JSON-ready representation of a rejection instance.

    A :class:`MultiprocRejectionProblem` additionally carries
    ``"processors": m``; uniprocessor payloads omit the key entirely, so
    the uniprocessor schema is byte-identical to earlier versions.
    Heterogeneous instances carry ``"platform"`` (and optionally
    ``"mk"``) instead of ``"energy_fn"``; stochastic ones spell each
    task's cycles as a distribution object.
    """
    if isinstance(problem, (HeteroRejectionProblem, StochasticHeteroProblem)):
        if isinstance(problem, StochasticHeteroProblem):
            tasks = [
                {
                    "name": t.name,
                    "cycles": t.dist.to_dict(),
                    "penalty": t.penalty,
                }
                for t in problem.tasks
            ]
        else:
            tasks = [
                {"name": t.name, "cycles": t.cycles, "penalty": t.penalty}
                for t in problem.tasks
            ]
        data: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "tasks": tasks,
            "platform": _platform_to_dict(problem.platform),
        }
        if problem.mk is not None:
            data["mk"] = problem.mk.to_dict()
        return data
    if not isinstance(problem, (RejectionProblem, MultiprocRejectionProblem)):
        raise TypeError(
            f"cannot serialise instance of type {type(problem).__name__}"
        )
    data = {
        "schema_version": SCHEMA_VERSION,
        "tasks": [
            {"name": t.name, "cycles": t.cycles, "penalty": t.penalty}
            for t in problem.tasks
        ],
        "energy_fn": _energy_fn_to_dict(problem.energy_fn),
    }
    if isinstance(problem, MultiprocRejectionProblem):
        data["processors"] = int(problem.m)
    return data


def instance_from_dict(data: dict[str, Any]):
    """Rebuild a rejection instance from :func:`instance_to_dict` output.

    Payloads with a ``"platform"`` key come back as
    :class:`~repro.hetero.assign.HeteroRejectionProblem` (or
    :class:`~repro.hetero.stochastic.StochasticHeteroProblem` when any
    task's cycles is a distribution object); ``"processors"`` payloads
    as :class:`MultiprocRejectionProblem`; all others as
    :class:`RejectionProblem`.
    """
    version = _require(data, "schema_version", "")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    entries = _require_list(data, "tasks", "")
    hetero = "platform" in data
    stochastic = hetero and any(
        isinstance(t, dict) and isinstance(t.get("cycles"), dict)
        for t in entries
    )
    if stochastic:
        stasks: list[StochasticTask] = []
        for idx, entry in enumerate(entries):
            sub = f"tasks[{idx}]"
            cycles = _require(entry, "cycles", sub)
            if isinstance(cycles, dict):
                try:
                    dist = CycleDistribution.from_dict(cycles)
                except ValueError as exc:
                    raise ValueError(
                        f"instance field {sub}.cycles: {exc}"
                    ) from None
            else:
                if isinstance(cycles, bool) or not isinstance(
                    cycles, (int, float)
                ):
                    raise ValueError(
                        f"instance field {sub}.cycles: expected a number or "
                        f"distribution object, got {cycles!r}"
                    )
                dist = CycleDistribution.fixed(cycles)
            stasks.append(
                StochasticTask(
                    name=_require_str(entry, "name", sub),
                    dist=dist,
                    penalty=_require_number(entry, "penalty", sub),
                )
            )
        return StochasticHeteroProblem(
            tasks=tuple(stasks),
            platform=_platform_from_dict(_require(data, "platform", "")),
            mk=_mk_from_dict(data["mk"]) if "mk" in data else None,
        )
    frame_tasks: list[FrameTask] = []
    for idx, entry in enumerate(entries):
        sub = f"tasks[{idx}]"
        frame_tasks.append(
            FrameTask(
                name=_require_str(entry, "name", sub),
                cycles=_require_number(entry, "cycles", sub),
                penalty=_require_number(entry, "penalty", sub),
            )
        )
    tasks = FrameTaskSet(frame_tasks)
    if hetero:
        if "energy_fn" in data:
            raise ValueError(
                "instance field energy_fn: a platform payload carries its "
                "own per-type curves; energy_fn is not allowed"
            )
        return HeteroRejectionProblem(
            tasks=tasks,
            platform=_platform_from_dict(_require(data, "platform", "")),
            mk=_mk_from_dict(data["mk"]) if "mk" in data else None,
        )
    energy_fn = _energy_fn_from_dict(_require(data, "energy_fn", ""))
    if "processors" in data:
        m = _require_int(data, "processors", "")
        return MultiprocRejectionProblem(tasks=tasks, energy_fn=energy_fn, m=m)
    return RejectionProblem(tasks=tasks, energy_fn=energy_fn)


def save_instance(problem, path: str | Path) -> Path:
    """Write *problem* to *path* as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(instance_to_dict(problem), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_instance(path: str | Path):
    """Read a rejection instance written by :func:`save_instance`."""
    with open(path) as fh:
        return instance_from_dict(json.load(fh))


def solution_to_dict(
    solution: RejectionSolution | MultiprocRejectionSolution,
) -> dict[str, Any]:
    """JSON-ready dump of a solution.

    Uniprocessor solutions carry the optimal speed plan; multiprocessor
    solutions carry the per-processor assignment and loads instead;
    heterogeneous solutions add per-core types and DVFS speeds.
    """
    if isinstance(solution, HeteroRejectionSolution):
        return _hetero_solution_to_dict(solution)
    if isinstance(solution, MultiprocRejectionSolution):
        return _multiproc_solution_to_dict(solution)
    plan = solution.speed_plan()
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm": solution.algorithm,
        "cost": solution.cost,
        "energy": solution.energy,
        "penalty": solution.penalty,
        "accepted": sorted(t.name for t in solution.accepted_tasks),
        "rejected": sorted(t.name for t in solution.rejected_tasks),
        "acceptance_ratio": solution.acceptance_ratio,
        "speed_plan": [
            {
                "start": seg.start,
                "end": seg.end,
                "speed": seg.speed,
            }
            for seg in plan.segments
        ],
        "meta": {k: v for k, v in solution.meta.items()},
    }


def _multiproc_solution_to_dict(
    solution: MultiprocRejectionSolution,
) -> dict[str, Any]:
    problem = solution.problem
    tasks = problem.tasks
    sizes = [t.cycles for t in tasks]
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm": solution.algorithm,
        "cost": solution.cost,
        "energy": solution.breakdown.energy,
        "penalty": solution.breakdown.penalty,
        "processors": problem.m,
        "accepted": sorted(
            tasks[i].name
            for i in range(problem.n)
            if i not in solution.rejected
        ),
        "rejected": sorted(tasks[i].name for i in solution.rejected),
        "acceptance_ratio": solution.acceptance_ratio,
        "assignment": [
            sorted(tasks[i].name for i in bucket)
            for bucket in solution.partition.assignments
        ],
        "loads": solution.partition.loads(sizes),
    }


def _hetero_solution_to_dict(solution: HeteroRejectionSolution) -> dict[str, Any]:
    from repro.hetero.dvfs import dvfs_summary

    problem = solution.problem
    tasks = problem.tasks
    data = {
        "schema_version": SCHEMA_VERSION,
        "algorithm": solution.algorithm,
        "cost": solution.cost,
        "energy": solution.breakdown.energy,
        "penalty": solution.breakdown.penalty,
        "platform": _platform_to_dict(problem.platform),
        "accepted": sorted(
            tasks[i].name
            for i in range(problem.n)
            if i not in solution.rejected
        ),
        "rejected": sorted(tasks[i].name for i in solution.rejected),
        "acceptance_ratio": solution.acceptance_ratio,
        "cores": dvfs_summary(solution),
    }
    if problem.mk is not None:
        data["mk"] = problem.mk.to_dict()
    return data
