"""ASCII Gantt rendering of simulation traces and speed plans.

The box has no plotting stack, so schedule inspection happens in the
terminal: one row per task (plus idle/sleep), time quantised to a fixed
number of columns, execution marked with ``#`` against the row's scale.
Used by the examples and handy in the REPL:

>>> from repro.sched import simulate_edf, render_gantt  # doctest: +SKIP
>>> result = simulate_edf(tasks, model, record_trace=True)  # doctest: +SKIP
>>> print(render_gantt(result.trace, result.horizon))  # doctest: +SKIP
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import require_positive
from repro.energy.base import SpeedPlan
from repro.sched.edf import TraceInterval

#: Row labels for the non-task rows.
IDLE_ROW = "idle"
SLEEP_ROW = "sleep"


def render_gantt(
    trace: Sequence[TraceInterval],
    horizon: float,
    *,
    width: int = 72,
    fill: str = "#",
) -> str:
    """Render an EDF trace as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        Intervals from :class:`repro.sched.SimulationResult` (requires
        the simulation to have run with ``record_trace=True``).
    horizon:
        Total time span mapped onto the chart width.
    width:
        Number of time columns.
    fill:
        Mark used for occupancy.
    """
    require_positive("horizon", horizon)
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width!r}")
    if not trace:
        return "(empty trace)"

    rows: dict[str, list[str]] = {}
    order: list[str] = []

    def row_for(name: str) -> list[str]:
        if name not in rows:
            rows[name] = [" "] * width
            order.append(name)
        return rows[name]

    for interval in trace:
        name = interval.what
        if name == "idle":
            name = IDLE_ROW
        elif name == "sleep":
            name = SLEEP_ROW
        row = row_for(name)
        start = int(round(interval.start / horizon * width))
        end = int(round(interval.end / horizon * width))
        end = max(end, start + 1)  # even instant-ish slices show one cell
        for col in range(start, min(end, width)):
            row[col] = fill

    label_width = max(len(name) for name in order)
    lines = []
    for name in order:
        lines.append(f"{name:>{label_width}} |{''.join(rows[name])}|")
    axis = f"{'':>{label_width}}  0{'':{width - 2}}{horizon:g}"
    lines.append(axis)
    return "\n".join(lines)


def render_speed_plan(
    plan: SpeedPlan,
    *,
    width: int = 72,
    height: int = 8,
) -> str:
    """Render a :class:`~repro.energy.SpeedPlan` as an ASCII speed profile.

    Rows are speed levels (top = fastest used speed); columns are time.
    Sleep segments are marked ``z`` on the bottom row.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    horizon = plan.horizon
    if horizon <= 0 or not plan.segments:
        return "(empty plan)"
    top = max((seg.speed for seg in plan.segments), default=0.0)
    if top <= 0:
        return "(all idle)"

    grid = [[" "] * width for _ in range(height)]
    for seg in plan.segments:
        start = int(round(seg.start / horizon * width))
        end = max(int(round(seg.end / horizon * width)), start + 1)
        if seg.is_sleep:
            for col in range(start, min(end, width)):
                grid[height - 1][col] = "z"
            continue
        if seg.speed <= 0:
            continue
        level = int(round(seg.speed / top * height))
        level = min(max(level, 1), height)
        for row in range(height - level, height):
            for col in range(start, min(end, width)):
                grid[row][col] = "#"

    lines = []
    for r, row in enumerate(grid):
        label = f"{top * (height - r) / height:5.2f}"
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(f"{'':>5}  0{'':{width - 2}}{horizon:g}")
    return "\n".join(lines)
