"""Event-driven, speed-aware, preemptive EDF simulator with energy accounting.

One processor, a set of accepted periodic tasks, a constant execution
speed, optionally a dormant mode and the procrastination policy.  The
simulator is the library's ground truth: the analytic energy claims of
the rejection algorithms (``g(U·L)`` per hyper-period) and the safety of
the procrastination interval are both validated against it in the test
suite and in Tab R2.

Semantics:

* jobs are released periodically (``ai + k·pi``) and queued EDF (earliest
  absolute deadline first, FIFO tie-break);
* execution runs at the configured constant speed; preemption happens
  only at release instants (sufficient for EDF with a constant speed);
* a deadline miss is *recorded* when a deadline passes with work pending,
  and the job keeps running (overrun semantics) — feasible inputs must
  produce zero misses, which is exactly what the tests assert; the
  boundary (``now == deadline``, fp noise included) is judged by
  :func:`deadline_missed`, the same relative tolerance as the frame-based
  ``fits`` predicate;
* with ``context_switch_s``/``context_switch_j`` every load of a job the
  processor was not just running costs wall-clock time at active power
  (no cycles retire) plus a fixed transition energy; an interrupted
  switch restarts from scratch at the next pickup;
* idle gaps cost static power, unless the dormant mode is present and
  the gap is known to reach the break-even time, in which case the
  processor sleeps (one ``e_sw`` per sleep episode);
* with ``procrastinate=True`` a sleeping processor stays asleep for the
  :func:`repro.sched.proc.procrastination_interval` beyond the next
  release, batching work to lengthen sleep episodes;
* with ``actual_cycles`` jobs may complete under their WCEC, and with
  ``reclaim=True`` the simulator applies cycle-conserving EDF (Pillai &
  Shin, SOSP'01): each task is budgeted at its worst-case utilisation
  from release until its job completes, then at its *actual* utilisation
  until the next release; the speed tracks the budget sum, so early
  completions immediately slow the processor without risking deadlines.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass

from repro._validation import fits, require_nonnegative, require_positive
from repro.power.base import DormantMode, PowerModel
from repro.sched.proc import procrastination_interval
from repro.tasks.model import PeriodicTask, PeriodicTaskSet

#: Guard against accidentally simulating billions of jobs.
MAX_JOBS = 2_000_000


def deadline_missed(now: float, deadline: float) -> bool:
    """True when work pending (or completing) at *now* missed *deadline*.

    The boundary predicate for every deadline classification in the
    event-driven simulators, deliberately the same relative tolerance as
    the frame-based capacity check (:func:`repro._validation.fits`): a
    job finishing *exactly* at its deadline — or within the shared fp
    tolerance of it — met the deadline, just as a workload summing
    exactly to ``smax·D`` fits the frame.  This keeps the simulators'
    verdicts consistent with the analytic feasibility checks on
    boundary instances, including jobs preempted mid-context-switch
    whose wall-clock position is fp noise away from the deadline.
    """
    return not fits(now, deadline)


@dataclass(frozen=True)
class DeadlineMiss:
    """A recorded deadline miss."""

    task: str
    release: float
    deadline: float
    remaining_cycles: float


@dataclass(frozen=True)
class TraceInterval:
    """One interval of the execution trace.

    ``what`` is the task name, ``"idle"``, or ``"sleep"``.
    """

    start: float
    end: float
    what: str
    speed: float


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one EDF simulation."""

    horizon: float
    energy_active: float
    energy_idle: float
    energy_sleep: float
    busy_time: float
    idle_time: float
    sleep_time: float
    sleep_episodes: int
    jobs_released: int
    jobs_completed: int
    misses: tuple[DeadlineMiss, ...]
    context_switches: int = 0
    energy_switch: float = 0.0
    trace: tuple[TraceInterval, ...] = ()

    @property
    def total_energy(self) -> float:
        """Active + idle + sleep-transition + context-switch energy (J)."""
        return (
            self.energy_active
            + self.energy_idle
            + self.energy_sleep
            + self.energy_switch
        )

    @property
    def missed(self) -> bool:
        """True when any deadline was missed."""
        return bool(self.misses)


class Job:
    """One released job waiting in (or running from) an EDF ready queue.

    Shared between the periodic :class:`EdfSimulator` and the aperiodic
    arrival simulator (:mod:`repro.sim.engine`): a job is ``cycles`` of
    work released at ``release`` with an absolute ``deadline``;
    ``overhead_s`` is the wall-clock remainder of an in-progress context
    switch (it must elapse before further cycles execute, and it is
    re-charged from scratch when an interrupted switch restarts).
    """

    __slots__ = (
        "name",
        "release",
        "deadline",
        "cycles",
        "remaining",
        "seq",
        "overhead_s",
        "miss_logged",
        "task",
    )

    def __init__(
        self,
        name: str,
        release: float,
        deadline: float,
        cycles: float,
        seq: int,
        task: PeriodicTask | None = None,
    ) -> None:
        self.name = name
        self.release = release
        self.deadline = deadline
        self.cycles = cycles
        self.remaining = cycles
        self.seq = seq
        self.overhead_s = 0.0
        self.miss_logged = False
        self.task = task

    @classmethod
    def from_periodic(
        cls, task: PeriodicTask, release: float, seq: int, actual: float
    ) -> "Job":
        """The *seq*-th job of a periodic *task* (implicit deadline)."""
        return cls(
            task.name, release, release + task.period, actual, seq, task=task
        )

    def key(self) -> tuple[float, int]:
        return (self.deadline, self.seq)


class EdfSimulator:
    """Configurable EDF simulation of one processor.

    Parameters
    ----------
    tasks:
        The accepted periodic tasks (must be non-empty).
    power_model:
        Supplies ``P(s)`` and the static (idle) power.
    speed:
        Constant execution speed; defaults to the utilisation clamped to
        the processor range (and to the critical speed when a dormant
        mode is present).
    dormant:
        Enables the dormant mode with the given overheads.
    procrastinate:
        Apply the procrastination wake-up policy (needs ``dormant``).
    horizon:
        Simulation length; defaults to one exact hyper-period.
    record_trace:
        Keep the full interval trace (memory-heavy for long horizons).
    actual_cycles:
        Optional ``(task, job_sequence) -> cycles`` callable giving each
        job's actual requirement; values are clamped into ``(0, wcec]``.
        Defaults to WCEC for every job.
    reclaim:
        Apply cycle-conserving EDF speed scaling (requires jobs that can
        finish early to be useful; safe regardless).  The configured
        ``speed`` stays the worst-case ceiling; the running speed is
        ``speed · (budget utilisation / worst-case utilisation)``.
    context_switch_s, context_switch_j:
        Wall-clock time and transition energy charged every time the
        processor loads a job it was not just running (first pickup and
        every preemption resume alike).  The switch occupies the
        processor at active power without retiring cycles; an
        interrupted switch restarts from scratch on the next pickup.
        Defaults of zero reproduce the free-preemption model exactly.
    """

    def __init__(
        self,
        tasks: PeriodicTaskSet,
        power_model: PowerModel,
        *,
        speed: float | None = None,
        dormant: DormantMode | None = None,
        procrastinate: bool = False,
        horizon: float | None = None,
        record_trace: bool = False,
        actual_cycles: Callable[[PeriodicTask, int], float] | None = None,
        reclaim: bool = False,
        context_switch_s: float = 0.0,
        context_switch_j: float = 0.0,
    ) -> None:
        if len(tasks) == 0:
            raise ValueError("cannot simulate an empty task set")
        if procrastinate and dormant is None:
            raise ValueError("procrastinate=True requires a dormant mode")
        self._actual_cycles = actual_cycles
        self._reclaim = bool(reclaim)
        self._cs_time = require_nonnegative("context_switch_s", context_switch_s)
        self._cs_energy = require_nonnegative(
            "context_switch_j", context_switch_j
        )
        self._tasks = tasks
        self._model = power_model
        self._dormant = dormant
        self._procrastinate = procrastinate
        self._record = record_trace

        if speed is None:
            target = tasks.total_utilization
            if dormant is not None:
                target = max(target, power_model.critical_speed())
            speed = power_model.clamp_speed(target)
        require_positive("speed", speed)
        power_model.power(speed)  # validates the speed is in range
        self._speed = speed

        if horizon is None:
            horizon = float(tasks.hyper_period)
        require_positive("horizon", horizon)
        self._horizon = horizon

        expected_jobs = sum(
            max(0, math.ceil((horizon - t.arrival) / t.period)) for t in tasks
        )
        if expected_jobs > MAX_JOBS:
            raise ValueError(
                f"simulation would release {expected_jobs} jobs (> {MAX_JOBS}); "
                "shorten the horizon"
            )

    @property
    def speed(self) -> float:
        """The constant execution speed in use."""
        return self._speed

    @property
    def horizon(self) -> float:
        """The simulation length."""
        return self._horizon

    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Simulate ``[0, horizon)`` and return the aggregates."""
        releases: list[tuple[float, int, PeriodicTask]] = []
        seq = 0
        for task in self._tasks:
            t = task.arrival
            while t < self._horizon - 1e-12:
                releases.append((t, seq, task))
                seq += 1
                t += task.period
        heapq.heapify(releases)

        ready: list[tuple[float, int, Job]] = []
        trace: list[TraceInterval] = []
        misses: list[DeadlineMiss] = []

        energy_active = energy_idle = energy_sleep = energy_switch = 0.0
        busy = idle = asleep = 0.0
        sleep_episodes = 0
        context_switches = 0
        last_job: Job | None = None
        jobs_released = len(releases)
        jobs_completed = 0

        break_even = (
            self._dormant.break_even_time(self._model.static_power)
            if self._dormant is not None
            else math.inf
        )
        proc_interval = (
            procrastination_interval(self._tasks, self._speed)
            if self._procrastinate
            else 0.0
        )

        # Cycle-conserving budget: worst-case utilisation from release to
        # completion, actual utilisation from completion to next release.
        budget = {t.name: t.utilization for t in self._tasks}
        worst_case_u = self._tasks.total_utilization

        def _current_speed() -> float:
            if not self._reclaim:
                return self._speed
            share = sum(budget.values()) / worst_case_u
            return self._model.clamp_speed(max(self._speed * share, 1e-12))

        def _drain_releases(now: float) -> None:
            while releases and releases[0][0] <= now + 1e-12:
                rel_time, s, task = heapq.heappop(releases)
                actual = task.wcec
                if self._actual_cycles is not None:
                    drawn = float(self._actual_cycles(task, s))
                    actual = min(max(drawn, 1e-12), task.wcec)
                job = Job.from_periodic(task, rel_time, s, actual)
                heapq.heappush(ready, (job.deadline, job.seq, job))
                budget[task.name] = task.utilization

        def _log_miss_if_due(now: float) -> None:
            for _, _, job in ready:
                if not job.miss_logged and deadline_missed(now, job.deadline):
                    job.miss_logged = True
                    misses.append(
                        DeadlineMiss(
                            task=job.name,
                            release=job.release,
                            deadline=job.deadline,
                            remaining_cycles=job.remaining,
                        )
                    )

        now = 0.0
        _drain_releases(now)
        while now < self._horizon - 1e-12:
            if not ready:
                next_release = releases[0][0] if releases else self._horizon
                gap_end = min(next_release, self._horizon)
                gap = gap_end - now
                # With procrastination the processor may stay asleep for
                # the procrastination interval past the next release, so
                # the achievable sleep length — and hence the sleep/idle
                # decision — includes that extension.
                wake = gap_end
                if self._procrastinate and releases:
                    wake = min(gap_end + proc_interval, self._horizon)
                sleep_len = wake - now
                sleeping = (
                    self._dormant is not None
                    and sleep_len >= break_even - 1e-12
                    and sleep_len > 0
                )
                if sleeping:
                    energy_sleep += self._dormant.e_sw
                    sleep_episodes += 1
                    asleep += wake - now
                    if self._record:
                        trace.append(TraceInterval(now, wake, "sleep", 0.0))
                    now = wake
                else:
                    if gap > 0:
                        energy_idle += self._model.static_power * gap
                        idle += gap
                        if self._record:
                            trace.append(TraceInterval(now, gap_end, "idle", 0.0))
                    now = gap_end
                _drain_releases(now)
                _log_miss_if_due(now)
                continue

            deadline, _, job = ready[0]
            if job is not last_job:
                if self._cs_time > 0 or self._cs_energy > 0:
                    # Loading a different context: an interrupted switch
                    # restarts from scratch, so any stale remainder is
                    # replaced by a full charge.
                    job.overhead_s = self._cs_time
                    energy_switch += self._cs_energy
                    context_switches += 1
                last_job = job
            speed_now = _current_speed()
            finish = now + job.overhead_s + job.remaining / speed_now
            next_release = releases[0][0] if releases else math.inf
            run_until = min(finish, next_release, self._horizon)
            dt = run_until - now
            if dt > 0:
                switch_dt = min(job.overhead_s, dt)
                job.overhead_s -= switch_dt
                executed = (dt - switch_dt) * speed_now
                job.remaining = max(job.remaining - executed, 0.0)
                energy_active += self._model.power(speed_now) * dt
                busy += dt
                if self._record:
                    trace.append(
                        TraceInterval(now, run_until, job.name, speed_now)
                    )
            now = run_until
            if job.remaining <= 1e-9 and job.overhead_s <= 1e-12:
                heapq.heappop(ready)
                jobs_completed += 1
                budget[job.name] = job.cycles / job.task.period
                if not job.miss_logged and deadline_missed(now, job.deadline):
                    misses.append(
                        DeadlineMiss(
                            task=job.name,
                            release=job.release,
                            deadline=job.deadline,
                            remaining_cycles=0.0,
                        )
                    )
                    job.miss_logged = True
            _drain_releases(now)
            _log_miss_if_due(now)

        # Jobs still pending at the horizon missed their deadline only if
        # the deadline itself is inside the horizon.
        for _, _, job in ready:
            if not job.miss_logged and fits(job.deadline, self._horizon):
                misses.append(
                    DeadlineMiss(
                        task=job.name,
                        release=job.release,
                        deadline=job.deadline,
                        remaining_cycles=job.remaining,
                    )
                )

        return SimulationResult(
            horizon=self._horizon,
            energy_active=energy_active,
            energy_idle=energy_idle,
            energy_sleep=energy_sleep,
            busy_time=busy,
            idle_time=idle,
            sleep_time=asleep,
            sleep_episodes=sleep_episodes,
            jobs_released=jobs_released,
            jobs_completed=jobs_completed,
            misses=tuple(misses),
            context_switches=context_switches,
            energy_switch=energy_switch,
            trace=tuple(trace),
        )


def simulate_edf(
    tasks: PeriodicTaskSet,
    power_model: PowerModel,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`EdfSimulator` and run it."""
    return EdfSimulator(tasks, power_model, **kwargs).run()
