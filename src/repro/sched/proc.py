"""Procrastination (PROC) policy for dormant-enable processors.

After the task assignment is fixed, a sleeping processor need not wake
the instant a job arrives: as long as the postponed demand still fits
before every deadline, staying dormant saves static energy and avoids
extra sleep transitions.  The companion text applies the procrastination
algorithm of Jejurikar et al. (DAC'04) per processor.

This reconstruction uses the conservative closed-form interval

    Z = (1 − U/s) · min_i pi

for a task set with utilisation ``U`` run at constant speed ``s`` under
EDF: over any window of length ``t`` starting at the first pending
arrival, the processor owes at most ``(U/s)·t + (U/s)·min_p`` time of
work... the short safety argument is in :func:`procrastination_interval`'s
docstring, and the EDF simulator's property tests exercise it on random
task sets (zero deadline misses required).
"""

from __future__ import annotations

from repro._validation import require_positive
from repro.tasks.model import PeriodicTaskSet


def procrastination_interval(
    tasks: PeriodicTaskSet, speed: float, *, safety: float = 1.0
) -> float:
    """Maximum safe sleep extension after a job arrival, under EDF.

    Safety sketch: with all tasks synchronously released at the wake-up
    deadline ``Z``, EDF at speed ``s`` meets all deadlines iff for every
    absolute deadline ``d`` the demand bound ``Σ ⌊(d−Z)/pi + 1⌋·ci/s``
    plus the delay ``Z`` fits in ``d``.  Using the linear upper bound
    ``demand(d) ≤ (U/s)·d + Σ ci/s ≤ (U/s)·d + (U/s)·max_p`` the binding
    constraint is the earliest deadline ``d = min_p``; solving gives
    ``Z ≤ min_p·(1 − U/s) − slack terms``, of which the stated interval
    keeps the dominant part and drops the (positive) slack — hence
    conservative for ``U/s ≤ 1``.  The ``safety`` factor (≤ 1) shrinks it
    further if desired.

    Parameters
    ----------
    tasks:
        The accepted task set on this processor.
    speed:
        The constant execution speed; must satisfy ``U ≤ speed``.
    safety:
        Multiplier in (0, 1] applied to the interval.
    """
    if len(tasks) == 0:
        raise ValueError("procrastination needs at least one task")
    require_positive("speed", speed)
    if not 0.0 < safety <= 1.0:
        raise ValueError(f"safety must be in (0, 1], got {safety!r}")
    utilization = tasks.total_utilization
    effective = utilization / speed
    if effective > 1.0 + 1e-12:
        raise ValueError(
            f"task set utilisation {utilization} is infeasible at speed {speed}"
        )
    min_period = min(t.period for t in tasks)
    interval = min_period * max(0.0, 1.0 - effective)
    # Each task's own first job must also fit: Z + ci/s <= pi.
    for t in tasks:
        interval = min(interval, max(0.0, t.period - t.wcec / speed))
    return safety * interval
