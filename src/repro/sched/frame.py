"""Frame execution: run accepted frame tasks against a speed plan.

Frame-based tasks all arrive at 0 and share the deadline, so any
work-conserving order is fine; this executor runs them back-to-back over
the :class:`repro.energy.SpeedPlan` produced by the energy function and
verifies that (a) every accepted task finishes by the deadline and
(b) the plan's energy matches the integral of the executed power — the
end-to-end check that the analytic ``g(W)`` is actually achievable on
the modelled processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.base import SpeedPlan
from repro.power.base import DormantMode, PowerModel
from repro.tasks.model import FrameTaskSet


@dataclass(frozen=True)
class TaskCompletion:
    """When one task started and finished within the frame."""

    task: str
    start: float
    finish: float


@dataclass(frozen=True)
class FrameExecution:
    """Outcome of executing a frame against a speed plan."""

    completions: tuple[TaskCompletion, ...]
    energy: float
    makespan: float
    deadline: float

    @property
    def all_met(self) -> bool:
        """True when every task finished by the deadline."""
        return self.makespan <= self.deadline * (1 + 1e-9)


def execute_frame_plan(
    tasks: FrameTaskSet,
    plan: SpeedPlan,
    power_model: PowerModel,
    *,
    deadline: float | None = None,
    dormant: DormantMode | None = None,
) -> FrameExecution:
    """Execute *tasks* sequentially over *plan* and account the energy.

    Raises ValueError when the plan does not carry enough cycles for the
    task set (a bug in the caller's plan construction, not a scheduling
    outcome).
    """
    horizon = plan.horizon
    deadline = horizon if deadline is None else deadline
    total_needed = tasks.total_cycles
    if plan.total_cycles < total_needed * (1 - 1e-9):
        raise ValueError(
            f"speed plan supplies {plan.total_cycles} cycles but the task "
            f"set needs {total_needed}"
        )

    completions: list[TaskCompletion] = []
    energy = 0.0
    makespan = 0.0

    task_iter = iter(tasks)
    current = next(task_iter, None)
    remaining = current.cycles if current is not None else 0.0
    start_time = 0.0

    for seg in plan.segments:
        seg_time = seg.start
        seg_speed = max(seg.speed, 0.0)
        seg_left = seg.duration
        # Energy for idle/sleep portions of the plan.
        if current is None or seg_speed == 0.0:
            if seg.is_sleep:
                energy += dormant.e_sw if dormant is not None else 0.0
            else:
                energy += power_model.static_power * seg.duration
            continue
        while current is not None and seg_left > 1e-15:
            time_needed = remaining / seg_speed
            slice_len = min(time_needed, seg_left)
            executed = slice_len * seg_speed
            energy += power_model.power(seg_speed) * slice_len
            seg_time += slice_len
            seg_left -= slice_len
            remaining -= executed
            if remaining <= 1e-9:
                completions.append(
                    TaskCompletion(task=current.name, start=start_time, finish=seg_time)
                )
                makespan = seg_time
                start_time = seg_time
                current = next(task_iter, None)
                remaining = current.cycles if current is not None else 0.0
        if current is None and seg_left > 1e-15 and not seg.is_sleep:
            # Tail of the segment after the last task completed: idle-ish
            # at the segment's static cost only if it was an idle segment;
            # an executing segment that outlives the workload means the
            # plan over-provisioned, which total-cycles checking prevents
            # up to fp noise — account it as idle.
            energy += power_model.static_power * seg_left

    if current is not None:
        raise ValueError(
            f"plan exhausted with task {current.name!r} incomplete "
            f"({remaining} cycles left)"
        )

    return FrameExecution(
        completions=tuple(completions),
        energy=energy,
        makespan=makespan,
        deadline=deadline,
    )
