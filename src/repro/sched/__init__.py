"""Scheduling substrate: EDF simulation, frame execution, procrastination.

The rejection algorithms reason analytically (through ``g(W)``); this
package is the ground truth they are checked against:

* :mod:`repro.sched.edf` — an event-driven, preemptive, speed-aware EDF
  simulator for periodic tasks on one processor, with full energy
  accounting (dynamic, static, sleep transitions) and deadline-miss
  detection;
* :mod:`repro.sched.frame` — executes a :class:`repro.energy.SpeedPlan`
  against a frame task set and verifies every accepted task completes by
  the deadline;
* :mod:`repro.sched.proc` — the procrastination (PROC) wake-up policy for
  dormant-enable processors.
"""

from repro.sched.edf import (
    EdfSimulator,
    Job,
    SimulationResult,
    deadline_missed,
    simulate_edf,
)
from repro.sched.frame import FrameExecution, execute_frame_plan
from repro.sched.gantt import render_gantt, render_speed_plan
from repro.sched.proc import procrastination_interval

__all__ = [
    "EdfSimulator",
    "Job",
    "SimulationResult",
    "deadline_missed",
    "simulate_edf",
    "FrameExecution",
    "execute_frame_plan",
    "procrastination_interval",
    "render_gantt",
    "render_speed_plan",
]
