"""Trace-replay bridge: the simulator's arrivals as live server load.

The point of the simulator is falsifiable: its rejection decisions must
be reproducible against the *real* ``repro serve`` admission controller,
not just against a second run of itself.  This module closes that loop:

* :func:`arrival_body` materialises one arrival as a complete ``POST
  /solve`` JSON body — a real, solvable instance whose task count is
  the arrival's ``n``, so the server's
  :func:`repro.service.models.estimate_cost` charges *exactly* the same
  work units the simulator charged.  Bodies derive from the arrival's
  ``instance_seed`` via ``random.Random`` (no NumPy), so a trace is
  reproducible from the arrival stream alone;
* :func:`write_trace` / :func:`load_trace` move traces as JSONL — one
  header line of metadata, then one line per arrival carrying the
  timestamp, the body, and the simulator's verdict;
* ``repro bench-serve --replay <trace>`` (see
  :func:`repro.service.loadgen.run_replay`) fires the trace at a live
  server in arrival order and collects per-request verdicts;
* :func:`paired_summary` renders the simulated and served outcomes side
  by side — offered / accepted / rejected counts, rejection rate,
  penalty cost priced identically on both sides
  (``weight × units / capacity``), and energy: measured joules for the
  simulator, the same power model's busy-time pricing applied to the
  served acceptance set for the server (a model-priced proxy, labelled
  as such).

Determinism contract: the trace file is a pure function of
``(family, count, seed)`` plus the admission configuration; replaying
the same trace in ``sequential`` mode presents the server with the same
request sequence in the same order the simulator saw.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any

from repro.analysis.tables import ExperimentTable
from repro.energy import ContinuousEnergyFunction
from repro.power import xscale_power_model
from repro.sim.engine import SimReport
from repro.sim.workload import Arrival
from repro.tasks.model import FrameTask, FrameTaskSet

__all__ = [
    "TRACE_FORMAT",
    "arrival_body",
    "load_trace",
    "paired_summary",
    "write_trace",
]

TRACE_FORMAT = "repro-sim-trace/1"


def arrival_body(arrival: Arrival) -> dict[str, Any]:
    """The ``POST /solve`` body for one arrival (NumPy-free, seeded).

    The instance is a real frame-based rejection problem: ``n`` tasks
    whose total load is drawn in the same 0.8–2.2 band the loadgen
    uses, priced through the standard XScale curve.  Only ``n``,
    ``algorithm`` and ``eps`` affect the server's admission cost, so the
    simulator and the server agree on every arrival's work units by
    construction.
    """
    from repro.core.rejection import RejectionProblem
    from repro.io import instance_to_dict

    rng = random.Random(arrival.instance_seed)
    energy_fn = ContinuousEnergyFunction(xscale_power_model(), deadline=1.0)
    load = rng.uniform(0.8, 2.2)
    raw = [rng.uniform(0.5, 1.5) for _ in range(arrival.n)]
    scale = load * energy_fn.max_workload / sum(raw)
    tasks = FrameTaskSet(
        FrameTask(
            name=f"t{i}",
            cycles=raw[i] * scale,
            penalty=round(rng.uniform(0.05, 0.5), 9),
        )
        for i in range(arrival.n)
    )
    problem = RejectionProblem(tasks=tasks, energy_fn=energy_fn)
    return {
        "instance": instance_to_dict(problem),
        "algorithm": arrival.algorithm,
        "eps": arrival.eps,
        "weight": arrival.weight,
        "deadline_s": arrival.deadline_s,
    }


def write_trace(
    path: Path | str,
    arrivals: tuple[Arrival, ...],
    report: SimReport,
    *,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write the replayable JSONL trace for a finished simulation."""
    if len(report.decisions) != len(arrivals):
        raise ValueError(
            f"report carries {len(report.decisions)} decisions for "
            f"{len(arrivals)} arrivals"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": TRACE_FORMAT,
        "count": len(arrivals),
        "capacity_units": report.capacity_units,
        "rate_units_per_s": report.rate_units_per_s,
        "decision_digest": report.decision_digest(),
    }
    header.update(meta or {})
    with open(path, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for arrival, decision in zip(arrivals, report.decisions):
            fh.write(
                json.dumps(
                    {
                        "i": arrival.index,
                        "t": arrival.time,
                        "req_id": arrival.req_id,
                        "units": arrival.units,
                        "weight": arrival.weight,
                        "deadline_s": arrival.deadline_s,
                        "admitted": decision.admitted,
                        "reason": decision.reason,
                        "shed": list(decision.shed),
                        "body": arrival_body(arrival),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return path


def load_trace(path: Path | str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a trace file back as ``(header, entries)``; validates format."""
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path}: not a {TRACE_FORMAT} trace "
            f"(format={header.get('format')!r})"
        )
    entries = [json.loads(line) for line in lines[1:]]
    if len(entries) != header.get("count", len(entries)):
        raise ValueError(
            f"{path}: header says {header.get('count')} entries, "
            f"found {len(entries)}"
        )
    return header, entries


def _penalty_cost(entries: list[dict[str, Any]], capacity: float) -> float:
    """Σ weight × units / capacity over the given entries."""
    return sum(e["weight"] * e["units"] / capacity for e in entries)


def paired_summary(
    report: SimReport,
    entries: list[dict[str, Any]],
    served: list[tuple[str, int, str]],
    *,
    speed: float | None = None,
    served_samples: list[tuple[bool, float | None]] | None = None,
    served_window_s: float | None = None,
) -> ExperimentTable:
    """Simulated vs. served outcomes for the same trace, side by side.

    Parameters
    ----------
    report:
        The simulator's :class:`SimReport` for the trace.
    entries:
        The trace entries (:func:`load_trace`); supplies units/weights.
    served:
        Per-request server outcomes in trace order:
        ``(req_id, http_status, reason)`` with ``reason`` the server's
        rejection reason (``"admitted"`` for 200s).
    speed:
        Speed used to price served busy time; defaults to the report's.
    served_samples:
        Optional client-observed SLO samples in the shared
        ``(ok, latency_s | None)`` schema of
        :mod:`repro.obs.runtime.slo` (e.g. ``PassStats.slo_samples``
        from the replay).  When given, the table's notes gain one
        "SLO drift" row per objective comparing the simulator's
        attainment (:meth:`SimReport.slo_summary`) with the served one.
    served_window_s:
        Evaluation window for *served_samples*; defaults to the replay
        wall time being unknown, so pass the loadgen's ``elapsed_s``.
    """
    if len(served) != len(entries):
        raise ValueError(
            f"{len(served)} served outcomes for {len(entries)} trace entries"
        )
    by_id = {e["req_id"]: e for e in entries}
    cap = report.capacity_units
    model = xscale_power_model(s_max=1.0)
    s = model.clamp_speed(speed if speed is not None else report.speed)

    served_rejected = [
        by_id[rid] for rid, status, _ in served if status == 429
    ]
    served_ok = [by_id[rid] for rid, status, _ in served if status == 200]
    served_other = len(served) - len(served_rejected) - len(served_ok)
    # Model-priced proxy: the energy the simulator's cores would burn
    # executing the served acceptance set (busy time at P(s)).
    served_busy = sum(e["units"] for e in served_ok) / (
        report.rate_units_per_s * s
    )
    served_energy = model.power(s) * served_busy

    sim_rejected = [
        by_id[d.req_id]
        for d in report.decisions
        if not d.admitted or d.req_id in _shed_ids(report)
    ]

    matched = sum(
        1
        for (rid, status, _), d in zip(served, report.decisions)
        if rid == d.req_id
        and (status == 200) == (d.admitted and rid not in _shed_ids(report))
    )

    table = ExperimentTable(
        name="sim_replay",
        title="Simulated vs. served rejection on the same arrival trace",
        columns=(
            "stream",
            "offered",
            "accepted",
            "rejected",
            "reject_rate",
            "penalty_cost",
            "energy_j",
        ),
        notes=[
            "penalty_cost = sum(weight x units / capacity) over rejected "
            "arrivals, priced identically on both rows",
            "sim energy is the engine's measured joules; served energy is "
            "the same power model applied to the served acceptance set "
            "(model-priced proxy)",
            f"decisions matched: {matched}/{len(served)}",
        ],
    )
    if served_samples is not None:
        from repro.obs.runtime.slo import summarize_slo

        window = max(served_window_s or 0.0, 1e-9)
        served_slo = {
            r.objective.name: r
            for r in summarize_slo(served_samples, window_s=window)
        }
        for sim_res in report.slo_summary():
            srv = served_slo.get(sim_res.objective.name)
            if srv is None:  # pragma: no cover - objective sets match
                continue
            table.notes.append(
                f"SLO drift {sim_res.objective.name}: "
                f"sim={sim_res.attainment * 100:.3f}% "
                f"served={srv.attainment * 100:.3f}% "
                f"delta={(srv.attainment - sim_res.attainment) * 100:+.3f}pp"
            )
    table.add_row(
        "sim",
        report.offered,
        report.completed,
        report.rejected + report.shed,
        report.rejection_rate,
        report.penalty_cost,
        report.total_energy,
    )
    table.add_row(
        "served",
        len(served),
        len(served_ok),
        len(served_rejected) + served_other,
        (len(served_rejected) + served_other) / len(served) if served else 0.0,
        _penalty_cost(served_rejected, cap),
        served_energy,
    )
    assert abs(_penalty_cost(sim_rejected, cap) - report.penalty_cost) < 1e-6
    return table


def _shed_ids(report: SimReport) -> frozenset[str]:
    return frozenset(
        victim for d in report.decisions for victim in d.shed
    )
