"""Discrete-event simulator: online rejection over per-core EDF queues.

The engine replays an arrival stream (:mod:`repro.sim.workload`) against
the *same* admission machinery the live server uses — it instantiates
:class:`repro.service.admission.AdmissionController` (which wraps a
:class:`repro.core.rejection.online.OnlinePolicy`) and asks it for a
verdict at every arrival instant.  A simulated rejection and a served
429 are therefore the same decision, by construction rather than by
re-implementation; the recorded :attr:`SimReport.admission_log` replays
byte-identically into a fresh controller (the property test in
``tests/sim/test_equivalence.py`` pins this).

Admitted arrivals become :class:`repro.sched.edf.Job` objects — the
same job class, the same :func:`repro.sched.edf.deadline_missed`
boundary predicate, and the same context-switch semantics (charge on
loading a job the core was not just running; an interrupted switch
restarts from scratch) as the periodic :class:`~repro.sched.edf.EdfSimulator`.
What is new here is the arrival side:

* jobs arrive aperiodically (or from merged periodic streams) instead
  of being released from a fixed task set;
* ``cores`` identical cores each run one job; at every event instant
  the ``cores`` earliest-deadline admitted jobs run (global EDF with
  core affinity: a job keeps its core while it remains scheduled, so
  migrations — and their context switches — only happen when the EDF
  order forces them);
* preemption happens only at event instants (arrivals, completions),
  which is sufficient for EDF at a constant speed;
* the admission controller's *shedding* reaches into the ready queue:
  a queued (never-dispatched) job evicted to make room for a
  higher-density newcomer leaves the simulation and pays its penalty,
  exactly like the server failing a queued future with 429;
* deadline misses use overrun semantics — the job keeps running and
  the miss is recorded — so feasibility shows up as ``misses == ()``
  rather than as lost work.

Everything is pure Python floats over sorted containers with
deterministic tie-breaks: the same arrival tuple and configuration
produce the same :class:`SimReport`, field for field.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass

from repro._validation import require_nonnegative, require_positive
from repro.core.rejection.online import OnlinePolicy
from repro.hetero.platform import Platform
from repro.power import xscale_power_model
from repro.power.base import PowerModel
from repro.sched.edf import DeadlineMiss, Job, TraceInterval, deadline_missed
from repro.service.admission import AdmissionController
from repro.sim.workload import Arrival

__all__ = ["ArrivalRecord", "ArrivalSimulator", "Decision", "SimReport"]


@dataclass(frozen=True)
class Decision:
    """One admission verdict, in arrival order (the differential unit)."""

    req_id: str
    admitted: bool
    reason: str
    shed: tuple[str, ...] = ()

    def as_tuple(self) -> tuple:
        return (self.req_id, self.admitted, self.reason, self.shed)


@dataclass(frozen=True)
class ArrivalRecord:
    """Per-arrival outcome after the simulation has quiesced.

    ``outcome`` is ``"rejected"`` (turned away at the door), ``"shed"``
    (admitted, then evicted from the queue by a later arrival) or
    ``"completed"``; ``start``/``finish``/``response_s`` are populated
    only for completed jobs, and ``missed`` marks a completed job whose
    finish fell beyond its absolute deadline (per ``deadline_missed``).
    """

    req_id: str
    time: float
    units: float
    weight: float
    deadline_s: float
    outcome: str
    reason: str
    start: float | None = None
    finish: float | None = None
    missed: bool = False

    @property
    def response_s(self) -> float | None:
        """Arrival-to-completion latency (None unless completed)."""
        if self.finish is None:
            return None
        return self.finish - self.time


@dataclass(frozen=True)
class SimReport:
    """Aggregate outcome of one arrival simulation."""

    cores: int
    capacity_units: float
    rate_units_per_s: float
    speed: float
    makespan: float
    busy_time: float
    idle_time: float
    energy_active: float
    energy_idle: float
    energy_switch: float
    context_switches: int
    offered: int
    admitted: int
    rejected: int
    shed: int
    completed: int
    penalty_cost: float
    misses: tuple[DeadlineMiss, ...]
    decisions: tuple[Decision, ...]
    records: tuple[ArrivalRecord, ...]
    admission_log: tuple[tuple, ...]
    trace: tuple[TraceInterval, ...] = ()
    cores_spec: str | None = None

    @property
    def total_energy(self) -> float:
        """Active + idle + context-switch energy over all cores (J)."""
        return self.energy_active + self.energy_idle + self.energy_switch

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered arrivals that did not complete (429s)."""
        if not self.offered:
            return 0.0
        return (self.rejected + self.shed) / self.offered

    def decision_digest(self) -> str:
        """Order-sensitive digest of every admission verdict.

        Two runs — or the simulator and a live server fed the same
        sequence — agree on admission iff their digests match.
        """
        payload = json.dumps(
            [d.as_tuple() for d in self.decisions], separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def slo_samples(self) -> list[tuple[bool, float | None]]:
        """SLO samples in the shared ``(ok, latency_s | None)`` schema.

        Mirrors the serving-side convention
        (:mod:`repro.obs.runtime.slo`): rejected and shed arrivals are
        the admission *policy* and contribute no sample; completed jobs
        contribute their response time, with a deadline miss counting
        as an availability failure (the sim's analogue of a 5xx — the
        answer arrived too late to be useful).
        """
        samples: list[tuple[bool, float | None]] = []
        for record in self.records:
            if record.outcome != "completed":
                continue
            samples.append((not record.missed, record.response_s))
        return samples

    def slo_summary(self, objectives=None) -> list:
        """Batch SLO evaluation over the makespan.

        Returns :class:`repro.obs.runtime.slo.SloResult` rows — the
        same schema ``bench-serve`` prints, so
        :func:`repro.sim.bridge.paired_summary` can report sim-vs-served
        SLO drift row by row.
        """
        from repro.obs.runtime.slo import DEFAULT_SLOS, summarize_slo

        return summarize_slo(
            self.slo_samples(),
            objectives or DEFAULT_SLOS,
            window_s=max(self.makespan, 1e-9),
        )


class _Open:
    """Mutable in-flight state for one admitted job."""

    __slots__ = ("arrival", "job", "dispatched", "start")

    def __init__(self, arrival: Arrival, job: Job) -> None:
        self.arrival = arrival
        self.job = job
        self.dispatched = False
        self.start: float | None = None


class ArrivalSimulator:
    """Simulate an arrival stream against admission + multi-core EDF.

    Parameters
    ----------
    arrivals:
        Time-ordered arrival stream (:func:`repro.sim.workload.make_arrivals`).
    cores:
        Identical cores, each retiring ``rate_units_per_s × speed`` work
        units per second while busy.
    policy:
        The :class:`OnlinePolicy` handed to the admission controller;
        ``None`` means :class:`~repro.core.rejection.online.AcceptIfFeasible`
        (admit whatever fits), exactly as ``repro serve`` defaults.
    capacity_units:
        Admission backlog bound, in the same work units as
        :func:`repro.service.models.estimate_cost`.
    rate_units_per_s:
        Single-core service rate.  Also feeds the controller's
        stateless per-request deadline check unless ``deadline_check``
        is False.
    speed:
        Execution speed in ``(0, 1]`` (clamped to the power model's
        range); busy core-seconds cost ``P(speed)`` watts, idle ones the
        model's static power.
    power_model:
        Energy pricing; defaults to the same normalised XScale curve the
        admission controller prices marginals with.
    context_switch_s, context_switch_j:
        Per-pickup context-switch wall time / energy (see
        :class:`repro.sched.edf.EdfSimulator`; defaults of zero give
        free preemption).
    platform:
        Optional heterogeneous platform
        (:func:`repro.hetero.parse_cores_spec`).  When given, ``cores``
        and ``power_model`` are superseded: the core count is the
        platform's flattened core list, and each core runs its *type's*
        power curve at ``clamp_speed(speed)`` for that type — so LP
        cores retire work at ``rate × s_max,lp`` while HP cores run the
        requested speed.  The controller never sees cores, but job
        completion times do feed back into its outstanding-units state
        via releases, so the decision stream — and
        :meth:`SimReport.decision_digest` — is platform-invariant only
        while admission is insensitive to outstanding workload (e.g.
        ``accept`` under ample capacity); under a binding capacity or a
        workload-priced policy, a slower platform holds units longer
        and can tip later verdicts.
    record_trace:
        Keep the per-core execution trace (``what`` is
        ``"c<k>:<req_id>"`` / ``"c<k>:idle"``).
    """

    def __init__(
        self,
        arrivals: tuple[Arrival, ...],
        *,
        cores: int = 1,
        policy: OnlinePolicy | None = None,
        capacity_units: float,
        rate_units_per_s: float,
        speed: float = 1.0,
        power_model: PowerModel | None = None,
        context_switch_s: float = 0.0,
        context_switch_j: float = 0.0,
        deadline_check: bool = True,
        platform: Platform | None = None,
        record_trace: bool = False,
    ) -> None:
        for prev, cur in zip(arrivals, arrivals[1:]):
            if cur.time < prev.time:
                raise ValueError("arrivals must be time-ordered")
        self._arrivals = tuple(arrivals)
        self._policy = policy
        self._capacity = require_positive("capacity_units", capacity_units)
        self._rate = require_positive("rate_units_per_s", rate_units_per_s)
        self._platform = platform
        if platform is not None:
            if power_model is not None:
                raise ValueError(
                    "platform and power_model are mutually exclusive; the "
                    "platform carries its own per-type curves"
                )
            self._cores = platform.total_cores
            self._speed = require_positive("speed", speed)
            type_indices = platform.core_type_indices()
            self._core_models = [
                platform.core_types[t].power_model for t in type_indices
            ]
            self._core_speeds = [
                m.clamp_speed(self._speed) for m in self._core_models
            ]
        else:
            if cores < 1:
                raise ValueError(
                    f"cores must be a positive integer, got {cores!r}"
                )
            self._cores = int(cores)
            model = power_model if power_model is not None else (
                xscale_power_model(s_max=1.0)
            )
            self._speed = model.clamp_speed(require_positive("speed", speed))
            model.power(self._speed)  # validates the speed is in range
            self._core_models = [model] * self._cores
            self._core_speeds = [self._speed] * self._cores
        self._cs_time = require_nonnegative("context_switch_s", context_switch_s)
        self._cs_energy = require_nonnegative(
            "context_switch_j", context_switch_j
        )
        self._deadline_check = bool(deadline_check)
        self._record = bool(record_trace)

    # ------------------------------------------------------------------ #

    def run(self) -> SimReport:
        """Simulate until every admitted job completes; return the report."""
        controller = AdmissionController(
            self._policy,
            capacity_units=self._capacity,
            rate_units_per_s=self._rate if self._deadline_check else None,
        )
        exec_rates = [self._rate * s for s in self._core_speeds]
        active_powers = [
            m.power(s) for m, s in zip(self._core_models, self._core_speeds)
        ]
        static_powers = [m.static_power for m in self._core_models]
        static_total = sum(static_powers)

        log: list[tuple] = []
        decisions: list[Decision] = []
        records: dict[str, ArrivalRecord] = {}
        misses: list[DeadlineMiss] = []
        open_jobs: dict[str, _Open] = {}

        ready: list[tuple[float, int, Job]] = []  # admitted, not running
        shed_gone: set[str] = set()  # lazy removal of shed queue entries
        running: list[Job | None] = [None] * self._cores
        core_last: list[Job | None] = [None] * self._cores
        trace: list[TraceInterval] = []

        energy_active = energy_idle = energy_switch = 0.0
        busy = idle = 0.0
        context_switches = 0
        completed = 0
        penalty_cost = 0.0
        next_arrival = 0

        def _penalty(a: Arrival) -> float:
            # The controller's own pricing: penalty = weight × capacity
            # fraction (AdmissionController._task_for).
            return a.weight * a.units / self._capacity

        def _admit_arrivals(now: float) -> None:
            nonlocal next_arrival, penalty_cost
            while (
                next_arrival < len(self._arrivals)
                and self._arrivals[next_arrival].time <= now + 1e-12
            ):
                a = self._arrivals[next_arrival]
                next_arrival += 1
                decision = controller.offer(
                    a.req_id, a.units, a.weight, a.deadline_s
                )
                log.append(
                    (
                        "offer",
                        a.req_id,
                        a.units,
                        a.weight,
                        a.deadline_s,
                        decision.admitted,
                        decision.reason,
                        decision.shed,
                    )
                )
                decisions.append(
                    Decision(
                        a.req_id,
                        decision.admitted,
                        decision.reason,
                        decision.shed,
                    )
                )
                for victim in decision.shed:
                    shed_gone.add(victim)
                    entry = open_jobs.pop(victim)
                    penalty_cost += _penalty(entry.arrival)
                    records[victim] = ArrivalRecord(
                        req_id=victim,
                        time=entry.arrival.time,
                        units=entry.arrival.units,
                        weight=entry.arrival.weight,
                        deadline_s=entry.arrival.deadline_s,
                        outcome="shed",
                        reason="shed",
                    )
                if decision.admitted:
                    job = Job(
                        a.req_id,
                        a.time,
                        a.time + a.deadline_s,
                        a.units,
                        a.index,
                    )
                    open_jobs[a.req_id] = _Open(a, job)
                    heapq.heappush(ready, (job.deadline, job.seq, job))
                else:
                    penalty_cost += _penalty(a)
                    records[a.req_id] = ArrivalRecord(
                        req_id=a.req_id,
                        time=a.time,
                        units=a.units,
                        weight=a.weight,
                        deadline_s=a.deadline_s,
                        outcome="rejected",
                        reason=decision.reason,
                    )

        def _pop_ready() -> Job | None:
            while ready:
                _, _, job = heapq.heappop(ready)
                if job.name not in shed_gone:
                    return job
            return None

        def _peek_ready_key() -> tuple[float, int] | None:
            while ready and ready[0][2].name in shed_gone:
                heapq.heappop(ready)
            return ready[0][:2] if ready else None

        def _schedule(now: float) -> None:
            """Put the ``cores`` earliest-deadline jobs on the cores."""
            nonlocal energy_switch, context_switches
            pool = [j for j in running if j is not None]
            while len(pool) < self._cores:
                job = _pop_ready()
                if job is None:
                    break
                pool.append(job)
            # Preemption: a waiting job with an earlier deadline replaces
            # the latest-deadline scheduled job.
            while pool:
                head = _peek_ready_key()
                worst = max(pool, key=Job.key)
                if head is None or head >= worst.key():
                    break
                pool.remove(worst)
                heapq.heappush(ready, (worst.deadline, worst.seq, worst))
                pool.append(_pop_ready())
            # Core affinity: a job that stays scheduled keeps its core.
            new_running: list[Job | None] = [None] * self._cores
            placed = set()
            for c, job in enumerate(running):
                if job is not None and job in pool and id(job) not in placed:
                    new_running[c] = job
                    placed.add(id(job))
            rest = sorted(
                (j for j in pool if id(j) not in placed), key=Job.key
            )
            free = iter(c for c in range(self._cores) if new_running[c] is None)
            for job in rest:
                c = next(free)
                new_running[c] = job
                if job is not core_last[c] and (
                    self._cs_time > 0 or self._cs_energy > 0
                ):
                    # Same restart semantics as EdfSimulator: loading a
                    # different context re-charges the switch in full.
                    job.overhead_s = self._cs_time
                    energy_switch += self._cs_energy
                    context_switches += 1
            running[:] = new_running
            for c, job in enumerate(running):
                if job is None:
                    continue
                core_last[c] = job
                entry = open_jobs[job.name]
                if not entry.dispatched:
                    entry.dispatched = True
                    entry.start = now
                    controller.dispatched(job.name)
                    log.append(("dispatched", job.name))

        def _log_miss_if_due(now: float) -> None:
            pending = [e.job for e in open_jobs.values()]
            pending.sort(key=Job.key)
            for job in pending:
                if not job.miss_logged and deadline_missed(now, job.deadline):
                    job.miss_logged = True
                    misses.append(
                        DeadlineMiss(
                            task=job.name,
                            release=job.release,
                            deadline=job.deadline,
                            remaining_cycles=job.remaining,
                        )
                    )

        now = 0.0
        _admit_arrivals(now)
        while True:
            _schedule(now)
            if all(j is None for j in running):
                if next_arrival >= len(self._arrivals):
                    break  # quiescent: nothing running, nothing to come
                gap_end = self._arrivals[next_arrival].time
                gap = gap_end - now
                if gap > 0:
                    idle += gap * self._cores
                    energy_idle += static_total * gap
                    if self._record:
                        for c in range(self._cores):
                            trace.append(
                                TraceInterval(now, gap_end, f"c{c}:idle", 0.0)
                            )
                now = gap_end
                _admit_arrivals(now)
                _log_miss_if_due(now)
                continue

            finish = min(
                now + j.overhead_s + j.remaining / exec_rates[c]
                for c, j in enumerate(running)
                if j is not None
            )
            if next_arrival < len(self._arrivals):
                run_until = min(finish, self._arrivals[next_arrival].time)
            else:
                run_until = finish
            dt = run_until - now
            if dt > 0:
                for c, job in enumerate(running):
                    if job is None:
                        idle += dt
                        energy_idle += static_powers[c] * dt
                        if self._record:
                            trace.append(
                                TraceInterval(now, run_until, f"c{c}:idle", 0.0)
                            )
                        continue
                    switch_dt = min(job.overhead_s, dt)
                    job.overhead_s -= switch_dt
                    executed = (dt - switch_dt) * exec_rates[c]
                    job.remaining = max(job.remaining - executed, 0.0)
                    busy += dt
                    energy_active += active_powers[c] * dt
                    if self._record:
                        trace.append(
                            TraceInterval(
                                now,
                                run_until,
                                f"c{c}:{job.name}",
                                self._core_speeds[c],
                            )
                        )
            now = run_until
            for c, job in enumerate(running):
                if job is None:
                    continue
                if job.remaining <= 1e-9 and job.overhead_s <= 1e-12:
                    running[c] = None
                    completed += 1
                    entry = open_jobs.pop(job.name)
                    controller.release(job.name)
                    log.append(("release", job.name))
                    missed = deadline_missed(now, job.deadline)
                    if missed and not job.miss_logged:
                        job.miss_logged = True
                        misses.append(
                            DeadlineMiss(
                                task=job.name,
                                release=job.release,
                                deadline=job.deadline,
                                remaining_cycles=0.0,
                            )
                        )
                    records[job.name] = ArrivalRecord(
                        req_id=job.name,
                        time=entry.arrival.time,
                        units=entry.arrival.units,
                        weight=entry.arrival.weight,
                        deadline_s=entry.arrival.deadline_s,
                        outcome="completed",
                        reason="admitted",
                        start=entry.start,
                        finish=now,
                        missed=missed or job.miss_logged,
                    )
            _admit_arrivals(now)
            _log_miss_if_due(now)

        assert not open_jobs, "simulation quiesced with jobs still open"
        ordered = tuple(records[a.req_id] for a in self._arrivals)
        return SimReport(
            cores=self._cores,
            capacity_units=self._capacity,
            rate_units_per_s=self._rate,
            speed=self._speed,
            makespan=now,
            busy_time=busy,
            idle_time=idle,
            energy_active=energy_active,
            energy_idle=energy_idle,
            energy_switch=energy_switch,
            context_switches=context_switches,
            offered=len(self._arrivals),
            admitted=controller.admitted_total,
            rejected=controller.rejected_total,
            shed=controller.shed_total,
            completed=completed,
            penalty_cost=penalty_cost,
            misses=tuple(misses),
            decisions=tuple(decisions),
            records=ordered,
            admission_log=tuple(log),
            trace=tuple(trace),
            cores_spec=(
                self._platform.spec() if self._platform is not None else None
            ),
        )
