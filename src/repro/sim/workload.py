"""Seeded arrival streams for the discrete-event simulator.

Each arrival is one would-be ``POST /solve`` request: an instance size
``n``, a solver choice, a client ``weight`` (the rejection penalty,
relative to a default request) and a latency budget ``deadline_s``.  Its
admission *work units* are exactly what the serving stack would charge —
:func:`repro.service.models.estimate_cost` on the same ``(n, algorithm,
eps)`` — so a simulated arrival and the replayed HTTP request price
identically at the admission controller.

Four named families, in the spirit of the EAPS batch runner's
light/bursty/heavy mixes:

``light``
    Poisson arrivals at a modest rate, small instances, cheap solvers —
    the pool stays mostly idle and nothing should be rejected.
``bursty``
    Geometric bursts separated by exponential quiet gaps; arrivals
    inside a burst land microseconds apart, so backlog spikes even when
    the long-run rate is sustainable.
``heavy``
    High-rate overload with a heavy-tailed solver mix (some FPTAS
    requests cost three orders of magnitude more than a greedy sweep)
    and tight deadlines — the regime where rejection is mandatory.
``periodic``
    A fixed set of phased periodic streams, one instance shape per
    stream — the closest analogue of the paper's frame-based model.

Everything derives from ``random.Random(seed)`` (stdlib Mersenne
Twister, stable across platforms and Python versions for the methods
used here): the same ``(family, count, seed)`` always produces the same
arrival tuple, byte for byte.  No NumPy anywhere on this path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._validation import require_positive
from repro.service.models import estimate_cost

__all__ = ["ARRIVAL_FAMILIES", "Arrival", "make_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One simulated solve request arriving at ``time`` seconds.

    Attributes
    ----------
    index:
        Position in the stream (0-based); also fixes the request id.
    time:
        Arrival instant in seconds from the start of the run
        (non-decreasing along the stream).
    n:
        Instance size (number of frame tasks).
    algorithm, eps:
        Solver the request asks for; ``eps`` only matters for ``fptas``.
    weight:
        Client weight — the rejection penalty relative to a default
        request, exactly as ``POST /solve`` carries it.
    deadline_s:
        Client latency budget in seconds.
    instance_seed:
        Per-arrival seed the replay bridge uses to materialise the
        actual instance payload (same seed ⇒ same JSON body).
    """

    index: int
    time: float
    n: int
    algorithm: str
    eps: float
    weight: float
    deadline_s: float
    instance_seed: int

    @property
    def req_id(self) -> str:
        """Stable request identifier (mirrors the server's ``rNNNNNNNN``)."""
        return f"s{self.index:08d}"

    @property
    def units(self) -> float:
        """Admission work units — the service's own cost estimate."""
        return estimate_cost(self.n, self.algorithm, eps=self.eps)


def _light(rng: random.Random, count: int) -> list[Arrival]:
    t = 0.0
    out = []
    for i in range(count):
        t += rng.expovariate(20.0)
        out.append(
            Arrival(
                index=i,
                time=t,
                n=rng.randint(6, 10),
                algorithm="greedy_marginal",
                eps=0.1,
                weight=round(rng.uniform(0.5, 2.0), 6),
                deadline_s=round(rng.uniform(1.0, 5.0), 6),
                instance_seed=rng.getrandbits(32),
            )
        )
    return out


def _bursty(rng: random.Random, count: int) -> list[Arrival]:
    t = 0.0
    out: list[Arrival] = []
    while len(out) < count:
        t += rng.expovariate(2.0)  # quiet gap between bursts
        burst = 1 + min(rng.getrandbits(4), 11)  # 1..12 arrivals
        for _ in range(burst):
            if len(out) >= count:
                break
            t += rng.uniform(1e-4, 5e-3)
            heavy = rng.random() < 0.25
            out.append(
                Arrival(
                    index=len(out),
                    time=t,
                    n=rng.randint(8, 14),
                    algorithm="fptas" if heavy else "greedy_marginal",
                    eps=0.1,
                    weight=round(rng.uniform(0.5, 2.0), 6),
                    deadline_s=round(rng.uniform(0.5, 2.0), 6),
                    instance_seed=rng.getrandbits(32),
                )
            )
    return out


def _heavy(rng: random.Random, count: int) -> list[Arrival]:
    t = 0.0
    out = []
    for i in range(count):
        t += rng.expovariate(200.0)
        roll = rng.random()
        if roll < 0.3:
            algorithm = "fptas"
        elif roll < 0.45:
            algorithm = "pareto_exact"
        else:
            algorithm = "greedy_marginal"
        out.append(
            Arrival(
                index=i,
                time=t,
                n=rng.randint(10, 16),
                algorithm=algorithm,
                eps=0.1,
                weight=round(rng.uniform(0.5, 2.0), 6),
                deadline_s=round(rng.uniform(0.2, 1.0), 6),
                instance_seed=rng.getrandbits(32),
            )
        )
    return out


#: (period_s, phase_s, n, algorithm) per periodic stream.
_PERIODIC_STREAMS = (
    (0.05, 0.000, 8, "greedy_marginal"),
    (0.10, 0.013, 10, "greedy_density"),
    (0.20, 0.027, 12, "fptas"),
    (0.40, 0.041, 14, "pareto_exact"),
)


def _periodic(rng: random.Random, count: int) -> list[Arrival]:
    raw: list[tuple[float, int]] = []  # (time, stream) merged by time
    k = 0
    while len(raw) < count:
        for s, (period, phase, _, _) in enumerate(_PERIODIC_STREAMS):
            raw.append((phase + k * period, s))
        k += 1
    raw.sort()
    out = []
    for i, (t, s) in enumerate(raw[:count]):
        _, _, n, algorithm = _PERIODIC_STREAMS[s]
        out.append(
            Arrival(
                index=i,
                time=t,
                n=n,
                algorithm=algorithm,
                eps=0.1,
                weight=round(rng.uniform(0.5, 2.0), 6),
                deadline_s=1.0,
                instance_seed=rng.getrandbits(32),
            )
        )
    return out


#: family name -> ``fn(rng, count) -> list[Arrival]``.
ARRIVAL_FAMILIES = {
    "light": _light,
    "bursty": _bursty,
    "heavy": _heavy,
    "periodic": _periodic,
}


def make_arrivals(family: str, count: int, seed: int) -> tuple[Arrival, ...]:
    """The seeded arrival stream for *family* (same inputs ⇒ same tuple)."""
    if family not in ARRIVAL_FAMILIES:
        raise ValueError(
            f"unknown arrival family {family!r}; "
            f"choose from {', '.join(sorted(ARRIVAL_FAMILIES))}"
        )
    require_positive("count", count)
    arrivals = ARRIVAL_FAMILIES[family](random.Random(seed), int(count))
    assert [a.index for a in arrivals] == list(range(count))
    return tuple(arrivals)
