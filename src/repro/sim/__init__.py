"""Discrete-event arrival simulation with online rejection.

The live-traffic counterpart of the frame-based experiments: seeded
aperiodic/periodic arrival streams (:mod:`repro.sim.workload`) run
against per-core EDF queues with preemption and context-switch costs
(:mod:`repro.sim.engine`, built on :mod:`repro.sched.edf`), with an
accept/reject verdict at every arrival instant from the *same*
:class:`~repro.service.admission.AdmissionController` +
:class:`~repro.core.rejection.online.OnlinePolicy` pair that backs
``repro serve`` — a simulated rejection and a served 429 are one
decision, not two implementations.  :mod:`repro.sim.bridge` exports a
simulation's arrivals as a replayable request trace for
``repro bench-serve --replay`` and renders the paired
simulated-vs-served comparison; :mod:`repro.sim.report` writes tables
and run manifests like ``repro run`` does.  Entirely NumPy-free.
"""

from repro.sim.bridge import (
    TRACE_FORMAT,
    arrival_body,
    load_trace,
    paired_summary,
    write_trace,
)
from repro.sim.engine import (
    ArrivalRecord,
    ArrivalSimulator,
    Decision,
    SimReport,
)
from repro.sim.report import sim_params, sim_table, write_sim_manifest
from repro.sim.workload import ARRIVAL_FAMILIES, Arrival, make_arrivals

__all__ = [
    "ARRIVAL_FAMILIES",
    "Arrival",
    "ArrivalRecord",
    "ArrivalSimulator",
    "Decision",
    "SimReport",
    "TRACE_FORMAT",
    "arrival_body",
    "load_trace",
    "make_arrivals",
    "paired_summary",
    "sim_params",
    "sim_table",
    "write_sim_manifest",
]
