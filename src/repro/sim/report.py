"""Rendering and provenance for simulation runs (``repro sim``).

Mirrors what ``repro run`` does for the offline experiments: the
simulation's outcome becomes an :class:`~repro.analysis.tables.ExperimentTable`
for the terminal (or ``--json``), and every run writes a manifest
through the same :func:`repro.obs.manifest.write_manifest` path the
experiment runner uses — content-addressed by the full parameter set,
with per-completed-request "trials" so ``repro stats <manifest>`` works
on simulation manifests unchanged.

Determinism: ``wall_seconds`` records the *simulated* makespan, not the
host's wall clock, and the trial list is the (deterministic) completed
jobs with their simulated response times — so two runs with the same
seed produce byte-identical manifests except for the ``created``
timestamp that :func:`write_manifest` stamps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.analysis.tables import ExperimentTable
from repro.runner.cache import cache_key, code_fingerprint
from repro.sim.engine import SimReport

__all__ = ["sim_params", "sim_table", "write_sim_manifest"]


def sim_table(report: SimReport, *, family: str, seed: int) -> ExperimentTable:
    """The per-run summary table (one row per admission outcome)."""
    table = ExperimentTable(
        name=f"sim_{family}",
        title=(
            f"Arrival simulation: family={family} seed={seed} "
            f"cores={report.cores}"
        ),
        columns=("outcome", "count", "rate", "penalty_cost", "units"),
        notes=[
            f"makespan={report.makespan:.6f}s busy={report.busy_time:.6f}s "
            f"idle={report.idle_time:.6f}s",
            f"energy: active={report.energy_active:.6f}J "
            f"idle={report.energy_idle:.6f}J "
            f"switch={report.energy_switch:.6f}J "
            f"total={report.total_energy:.6f}J "
            f"({report.context_switches} context switches)",
            f"deadline misses among admitted jobs: {len(report.misses)}",
            f"decision digest: {report.decision_digest()}",
        ],
    )
    offered = report.offered or 1
    by_outcome: dict[str, list] = {"completed": [], "rejected": [], "shed": []}
    for record in report.records:
        by_outcome[record.outcome].append(record)
    for outcome in ("completed", "rejected", "shed"):
        records = by_outcome[outcome]
        penalty = (
            0.0
            if outcome == "completed"
            else float(
                sum(r.weight * r.units / report.capacity_units for r in records)
            )
        )
        table.add_row(
            outcome,
            len(records),
            len(records) / offered,
            penalty,
            float(sum(r.units for r in records)),
        )
    return table


def sim_params(
    *,
    family: str,
    count: int,
    seed: int,
    cores: int,
    policy: str,
    capacity_units: float,
    rate_units_per_s: float,
    speed: float,
    context_switch_s: float,
    context_switch_j: float,
    cores_spec: str | None = None,
) -> dict[str, Any]:
    """The canonical parameter dict identifying one simulation run.

    ``cores_spec`` names a heterogeneous core set ('lp:2,hp:1'); it is
    only included when set so homogeneous manifests keep their shape.
    """
    params = {
        "family": family,
        "count": count,
        "cores": cores,
        "policy": policy,
        "capacity_units": capacity_units,
        "rate_units_per_s": rate_units_per_s,
        "speed": speed,
        "context_switch_s": context_switch_s,
        "context_switch_j": context_switch_j,
        "seed": seed,
    }
    if cores_spec is not None:
        params["cores_spec"] = cores_spec
    return params


def write_sim_manifest(
    report: SimReport,
    *,
    family: str,
    seed: int,
    params: dict[str, Any],
    manifest_dir: Path | None = None,
) -> Path:
    """Write the run manifest; returns its path.

    The manifest's "trials" are the completed requests with their
    simulated response times, so ``repro stats`` digests a simulation
    manifest exactly like an experiment manifest.
    """
    from repro.obs.manifest import write_manifest

    experiment = f"sim_{family}"
    code = code_fingerprint()
    key = cache_key(experiment, params, seed=seed, code_version=code)
    trial_seconds = [
        (r.req_id, r.response_s)
        for r in report.records
        if r.outcome == "completed"
    ]
    counters = {
        "sim.offered": report.offered,
        "sim.admitted": report.admitted,
        "sim.rejected": report.rejected,
        "sim.shed": report.shed,
        "sim.completed": report.completed,
        "sim.deadline_misses": len(report.misses),
        "sim.context_switches": report.context_switches,
        "sim.penalty_cost": report.penalty_cost,
        "sim.energy_total_j": report.total_energy,
        "sim.makespan_s": report.makespan,
    }
    return write_manifest(
        experiment=experiment,
        key=key,
        code=code,
        params=params,
        seed=seed,
        cache="none",
        jobs=1,
        wall_seconds=report.makespan,
        trial_seconds=trial_seconds,
        counters=counters,
        manifest_dir=manifest_dir,
    )
