"""Discrete speed levels for non-ideal processors.

"Ideal" processors in the system model offer a continuous speed spectrum;
real parts (XScale, StrongARM) expose a handful of frequency/voltage
operating points.  :class:`SpeedLevels` captures an ordered level set and
the standard adjacent-level machinery: given a desired average speed, the
energy-optimal policy on a convex power curve time-shares the two adjacent
available levels (Ishihara & Yasuura, ISLPED'98) — that split is computed
in :mod:`repro.energy.discrete`; this module only owns the level algebra.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro._validation import require_positive
from repro.power.base import PowerModel


class SpeedLevels:
    """An immutable, strictly increasing set of available speeds.

    Parameters
    ----------
    speeds:
        Positive speed values; duplicates are rejected rather than
        silently collapsed so that generator bugs surface early.
    """

    def __init__(self, speeds: Iterable[float]) -> None:
        values = [float(s) for s in speeds]
        if not values:
            raise ValueError("at least one speed level is required")
        for s in values:
            require_positive("speed level", s)
        ordered = sorted(values)
        for a, b in zip(ordered, ordered[1:]):
            if b - a <= 0:
                raise ValueError(f"duplicate speed level {a!r}")
        self._speeds: tuple[float, ...] = tuple(ordered)

    @property
    def speeds(self) -> tuple[float, ...]:
        """The levels in increasing order."""
        return self._speeds

    @property
    def s_min(self) -> float:
        """Slowest available level."""
        return self._speeds[0]

    @property
    def s_max(self) -> float:
        """Fastest available level."""
        return self._speeds[-1]

    def __len__(self) -> int:
        return len(self._speeds)

    def __iter__(self):
        return iter(self._speeds)

    def __contains__(self, speed: float) -> bool:
        return any(math.isclose(speed, s, rel_tol=1e-12) for s in self._speeds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpeedLevels):
            return NotImplemented
        return self._speeds == other._speeds

    def __hash__(self) -> int:
        return hash(self._speeds)

    def ceil(self, speed: float) -> float:
        """Smallest available level >= *speed* (raises above ``s_max``)."""
        for s in self._speeds:
            if s >= speed - 1e-15:
                return s
        raise ValueError(f"no available speed >= {speed!r} (s_max={self.s_max})")

    def floor(self, speed: float) -> float:
        """Largest available level <= *speed* (raises below ``s_min``)."""
        for s in reversed(self._speeds):
            if s <= speed + 1e-15:
                return s
        raise ValueError(f"no available speed <= {speed!r} (s_min={self.s_min})")

    def bracket(self, speed: float) -> tuple[float, float]:
        """The adjacent pair ``(lo, hi)`` with ``lo <= speed <= hi``.

        At an exact level (or outside the range after clamping) both
        entries coincide.
        """
        if speed <= self.s_min:
            return (self.s_min, self.s_min)
        if speed >= self.s_max:
            return (self.s_max, self.s_max)
        return (self.floor(speed), self.ceil(speed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpeedLevels({list(self._speeds)!r})"


def quantize_speeds(
    model: PowerModel, n_levels: int, *, s_max: float | None = None
) -> SpeedLevels:
    """Evenly spaced level set ``s_max/n, 2*s_max/n, ..., s_max`` for *model*.

    A convenience used by the non-ideal-processor experiments (Fig R5):
    the coarsest setting ``n_levels=2`` gives {s_max/2, s_max}, and
    ``n_levels -> inf`` converges to the ideal continuous processor.
    """
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels!r}")
    top = model.s_max if s_max is None else s_max
    if not math.isfinite(top):
        raise ValueError("cannot quantize an unbounded speed range; pass s_max")
    require_positive("s_max", top)
    return SpeedLevels(top * (k + 1) / n_levels for k in range(n_levels))
