"""Polynomial power models ``P(s) = beta0 + beta1 * s**alpha``.

This is the family used throughout the companion DATE'07 text's
experiments ("The power consumption function is beta1 + beta2 s^3") and in
most of the DVS literature: ``alpha`` is typically close to 3 for CMOS
dynamic power, ``beta0`` collects the speed-independent (leakage) power.
"""

from __future__ import annotations

import math

from repro._validation import require_nonnegative, require_positive
from repro.power.base import PowerModel


class PolynomialPowerModel(PowerModel):
    """``P(s) = beta0 + beta1 * s**alpha`` with ``alpha > 1``.

    Parameters
    ----------
    beta0:
        Speed-independent power (W).  This is the ``Pind`` of the system
        model; it is exposed as :attr:`static_power`.
    beta1:
        Coefficient of the dynamic term (W at ``s = 1``).
    alpha:
        Exponent of the dynamic term; must exceed 1 so that ``Pd(s)/s`` is
        increasing (required of dormant-disable processors by the system
        model).
    s_min, s_max:
        Available speed range.

    Examples
    --------
    >>> m = PolynomialPowerModel(beta0=0.08, beta1=1.52, alpha=3.0)
    >>> round(m.power(1.0), 2)
    1.6
    >>> round(m.critical_speed(), 4)
    0.2974
    """

    def __init__(
        self,
        *,
        beta0: float = 0.0,
        beta1: float = 1.0,
        alpha: float = 3.0,
        s_min: float = 0.0,
        s_max: float = 1.0,
    ) -> None:
        require_nonnegative("beta0", beta0)
        require_positive("beta1", beta1)
        if not alpha > 1.0:
            raise ValueError(f"alpha must be > 1 for convex P(s)/s, got {alpha!r}")
        super().__init__(s_min=s_min, s_max=s_max, static_power=beta0)
        self._beta1 = float(beta1)
        self._alpha = float(alpha)

    @property
    def beta0(self) -> float:
        """Speed-independent power term (alias of :attr:`static_power`)."""
        return self.static_power

    @property
    def beta1(self) -> float:
        """Dynamic power coefficient."""
        return self._beta1

    @property
    def alpha(self) -> float:
        """Dynamic power exponent."""
        return self._alpha

    def dynamic_power(self, speed: float) -> float:
        """``Pd(s) = beta1 * s**alpha``."""
        require_nonnegative("speed", speed)
        return self._beta1 * speed**self._alpha

    def critical_speed(self, *, tol: float = 1e-12) -> float:
        """Analytic critical speed, clamped into the speed range.

        Minimising ``(beta0 + beta1 s^alpha) / s`` gives
        ``s* = (beta0 / (beta1 * (alpha - 1))) ** (1 / alpha)``; with zero
        leakage the minimiser degenerates to the lowest usable speed.
        """
        if self.beta0 == 0.0:
            unconstrained = 0.0
        else:
            unconstrained = (self.beta0 / (self._beta1 * (self._alpha - 1.0))) ** (
                1.0 / self._alpha
            )
        hi = self.s_max if math.isfinite(self.s_max) else unconstrained
        return min(max(unconstrained, self.s_min), max(hi, self.s_min))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialPowerModel(beta0={self.beta0}, beta1={self._beta1}, "
            f"alpha={self._alpha}, s_min={self.s_min}, s_max={self.s_max})"
        )


def xscale_power_model(*, s_max: float = 1.0) -> PolynomialPowerModel:
    """The normalised Intel XScale model used by the companion text.

    ``P(s) = 0.08 + 1.52 * s**3`` W with the highest speed normalised to 1.
    """
    require_positive("s_max", s_max)
    return PolynomialPowerModel(beta0=0.08, beta1=1.52, alpha=3.0, s_max=s_max)
