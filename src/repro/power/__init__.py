"""DVS processor power models.

This package is the lowest-level substrate: it answers "what does it cost,
in watts, to run at speed ``s``", and derived questions ("what speed
minimises energy per cycle?", "what discrete levels are available?",
"when is entering the dormant mode worthwhile?").

Conventions (used consistently across the whole library):

* **speed** ``s`` is in cycles per time unit, normalised so the reference
  processor's maximum speed is 1.0 (the companion DATE'07 text normalises
  the Intel XScale this way, yielding ``P(s) = 0.08 + 1.52 s**3`` W);
* **power** is in watts, **time** in seconds, **energy** in joules;
* running ``c`` cycles at speed ``s`` takes ``c / s`` seconds and consumes
  ``(c / s) * P(s)`` joules.
"""

from repro.power.base import PowerModel, DormantMode
from repro.power.polynomial import PolynomialPowerModel, xscale_power_model
from repro.power.cmos import CMOSPowerModel
from repro.power.discrete import SpeedLevels, quantize_speeds

__all__ = [
    "PowerModel",
    "DormantMode",
    "PolynomialPowerModel",
    "xscale_power_model",
    "CMOSPowerModel",
    "SpeedLevels",
    "quantize_speeds",
]
