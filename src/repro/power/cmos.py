"""CMOS-derived power model.

The companion DATE'07 text (Equation 1) models the switching power of a
CMOS DVS processor as ``P_switch(s) = Cef * Vdd**2 * s`` where the speed is
tied to the supply voltage by ``s = kappa * (Vdd - Vt)**2 / Vdd``.  This
module implements that model exactly, including the voltage↔speed
inversion, an optional short-circuit term proportional to ``Vdd``, and an
optional constant leakage term.

The resulting ``P(s)`` is convex and increasing on the usable voltage
range, and for ``Vt = 0`` collapses to the familiar cubic
``P(s) = (Cef / kappa**2) * s**3``.
"""

from __future__ import annotations

import math

from repro._validation import require_nonnegative, require_positive
from repro.power.base import PowerModel


class CMOSPowerModel(PowerModel):
    """Power model parameterised by physical CMOS quantities.

    Parameters
    ----------
    c_ef:
        Effective switched capacitance ``Cef`` (F, up to normalisation).
    v_t:
        Threshold voltage ``Vt`` (V), >= 0.
    kappa:
        Hardware-specific proportionality constant ``kappa`` (> 0).
    v_dd_max:
        Maximum supply voltage; determines :attr:`s_max`.
    short_circuit_coeff:
        Optional coefficient ``gamma`` of a short-circuit power term
        ``gamma * Vdd * s`` ("the short-circuit power consumption is
        proportional to the supply voltage").
    static_power:
        Constant leakage power ``Pind``.

    Examples
    --------
    >>> m = CMOSPowerModel(c_ef=1.0, v_t=0.0, kappa=1.0, v_dd_max=1.0)
    >>> round(m.power(0.5), 6)  # Vt=0 -> pure cubic
    0.125
    """

    def __init__(
        self,
        *,
        c_ef: float = 1.0,
        v_t: float = 0.4,
        kappa: float = 1.0,
        v_dd_max: float = 1.8,
        short_circuit_coeff: float = 0.0,
        static_power: float = 0.0,
        s_min: float = 0.0,
    ) -> None:
        require_positive("c_ef", c_ef)
        require_nonnegative("v_t", v_t)
        require_positive("kappa", kappa)
        require_positive("v_dd_max", v_dd_max)
        require_nonnegative("short_circuit_coeff", short_circuit_coeff)
        if v_dd_max <= v_t:
            raise ValueError(
                f"v_dd_max ({v_dd_max}) must exceed v_t ({v_t}) for a "
                "positive maximum speed"
            )
        self._c_ef = float(c_ef)
        self._v_t = float(v_t)
        self._kappa = float(kappa)
        self._v_dd_max = float(v_dd_max)
        self._gamma = float(short_circuit_coeff)
        s_max = self._speed_of_voltage(v_dd_max)
        super().__init__(s_min=s_min, s_max=s_max, static_power=static_power)

    # ------------------------------------------------------------------ #
    # Physics                                                            #
    # ------------------------------------------------------------------ #

    def _speed_of_voltage(self, v_dd: float) -> float:
        """``s(Vdd) = kappa * (Vdd - Vt)**2 / Vdd`` (0 below threshold)."""
        if v_dd <= self._v_t:
            return 0.0
        return self._kappa * (v_dd - self._v_t) ** 2 / v_dd

    def speed_of_voltage(self, v_dd: float) -> float:
        """Public wrapper for the speed delivered at supply voltage *v_dd*."""
        require_nonnegative("v_dd", v_dd)
        if v_dd > self._v_dd_max * (1 + 1e-12):
            raise ValueError(
                f"v_dd {v_dd!r} exceeds v_dd_max {self._v_dd_max!r}"
            )
        return self._speed_of_voltage(v_dd)

    def voltage_of_speed(self, speed: float) -> float:
        """Invert ``s(Vdd)``: the (unique) supply voltage delivering *speed*.

        Solves ``kappa * Vdd**2 - (2 kappa Vt + s) Vdd + kappa Vt**2 = 0``
        for its larger root (the branch with ``Vdd > Vt``, on which speed
        increases with voltage).
        """
        require_nonnegative("speed", speed)
        if speed == 0.0:
            return self._v_t
        if speed > self.s_max * (1 + 1e-9):
            raise ValueError(f"speed {speed!r} exceeds s_max {self.s_max!r}")
        k, vt = self._kappa, self._v_t
        b = 2.0 * k * vt + speed
        discriminant = b * b - 4.0 * k * k * vt * vt
        v_dd = (b + math.sqrt(discriminant)) / (2.0 * k)
        return min(v_dd, self._v_dd_max)

    # ------------------------------------------------------------------ #
    # PowerModel interface                                               #
    # ------------------------------------------------------------------ #

    def dynamic_power(self, speed: float) -> float:
        """Switching plus short-circuit power at *speed*."""
        require_nonnegative("speed", speed)
        if speed == 0.0:
            return 0.0
        v_dd = self.voltage_of_speed(speed)
        switching = self._c_ef * v_dd * v_dd * speed
        short_circuit = self._gamma * v_dd * speed
        return switching + short_circuit

    @property
    def v_t(self) -> float:
        """Threshold voltage (V)."""
        return self._v_t

    @property
    def v_dd_max(self) -> float:
        """Maximum supply voltage (V)."""
        return self._v_dd_max

    @property
    def kappa(self) -> float:
        """Speed/voltage proportionality constant."""
        return self._kappa

    @property
    def c_ef(self) -> float:
        """Effective switched capacitance."""
        return self._c_ef

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CMOSPowerModel(c_ef={self._c_ef}, v_t={self._v_t}, "
            f"kappa={self._kappa}, v_dd_max={self._v_dd_max}, "
            f"static_power={self.static_power})"
        )
