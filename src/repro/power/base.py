"""Abstract power-model interface and dormant-mode parameters.

The system model follows the companion DATE'07 text, Section II: the power
drawn at speed ``s`` splits into a speed-dependent convex part ``Pd(s)``
and a speed-independent part ``Pind`` (leakage and friends).  A
*dormant-enable* processor can drop ``Pind`` to zero by sleeping, at a
mode-switch overhead of ``t_sw`` seconds and ``e_sw`` joules; a
*dormant-disable* processor always pays ``Pind`` and therefore models it
inside ``Pd``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro._validation import require_nonnegative

#: Default relative tolerance for numeric speed searches.
_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class DormantMode:
    """Overheads of switching a dormant-enable processor to/from sleep.

    Attributes
    ----------
    t_sw:
        Wall-clock time (seconds) consumed by a sleep→active transition.
    e_sw:
        Energy (joules) consumed by one sleep/wake round trip.
    """

    t_sw: float = 0.0
    e_sw: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative("t_sw", self.t_sw)
        require_nonnegative("e_sw", self.e_sw)

    def break_even_time(self, idle_power: float) -> float:
        """Idle duration above which sleeping beats idling.

        Idling for ``t`` seconds costs ``idle_power * t``; sleeping costs
        ``e_sw`` (plus requires ``t >= t_sw``).  The break-even time is
        ``max(e_sw / idle_power, t_sw)``; infinite when ``idle_power`` is 0
        (there is then nothing to save by sleeping).
        """
        require_nonnegative("idle_power", idle_power)
        if idle_power == 0.0:
            return math.inf
        return max(self.e_sw / idle_power, self.t_sw)


class PowerModel(ABC):
    """A DVS processor's power-vs-speed characteristic.

    Subclasses define :meth:`dynamic_power` (the convex, increasing
    ``Pd(s)``) and the constant :attr:`static_power` (``Pind``).  All
    energy-related conveniences are derived here.

    Parameters
    ----------
    s_min, s_max:
        The available speed range.  ``s_max = math.inf`` models the "ideal"
        analysis processor of the companion text's Section III-A.
    static_power:
        Speed-independent power ``Pind`` (W).
    """

    def __init__(
        self,
        *,
        s_min: float = 0.0,
        s_max: float = 1.0,
        static_power: float = 0.0,
    ) -> None:
        require_nonnegative("s_min", s_min)
        if not s_max > 0:
            raise ValueError(f"s_max must be > 0, got {s_max!r}")
        if math.isfinite(s_max) and s_min > s_max:
            raise ValueError(f"s_min ({s_min}) must be <= s_max ({s_max})")
        require_nonnegative("static_power", static_power)
        self._s_min = float(s_min)
        self._s_max = float(s_max)
        self._static_power = float(static_power)

    # ------------------------------------------------------------------ #
    # Interface                                                          #
    # ------------------------------------------------------------------ #

    @abstractmethod
    def dynamic_power(self, speed: float) -> float:
        """Speed-dependent power ``Pd(s)`` in watts (convex, increasing)."""

    @property
    def s_min(self) -> float:
        """Lowest available speed."""
        return self._s_min

    @property
    def s_max(self) -> float:
        """Highest available speed (may be ``math.inf`` for ideal models)."""
        return self._s_max

    @property
    def static_power(self) -> float:
        """Speed-independent power ``Pind`` in watts."""
        return self._static_power

    # ------------------------------------------------------------------ #
    # Derived quantities                                                 #
    # ------------------------------------------------------------------ #

    def power(self, speed: float) -> float:
        """Total power ``P(s) = Pd(s) + Pind`` at *speed* (W).

        Speed 0 is idle: dynamic power vanishes but ``Pind`` is still paid
        (a dormant-disable processor cannot shed it).
        """
        self._check_speed(speed)
        if speed == 0.0:
            return self._static_power
        return self.dynamic_power(speed) + self._static_power

    def energy_per_cycle(self, speed: float) -> float:
        """Energy to retire one cycle at *speed*: ``P(s) / s`` (J/cycle)."""
        self._check_speed(speed)
        if speed == 0.0:
            raise ValueError("energy_per_cycle is undefined at speed 0")
        return self.power(speed) / speed

    def energy(self, cycles: float, speed: float) -> float:
        """Energy to execute *cycles* cycles at constant *speed* (J)."""
        require_nonnegative("cycles", cycles)
        if cycles == 0.0:
            return 0.0
        return cycles * self.energy_per_cycle(speed)

    def execution_time(self, cycles: float, speed: float) -> float:
        """Time to execute *cycles* cycles at constant *speed* (s)."""
        require_nonnegative("cycles", cycles)
        self._check_speed(speed)
        if cycles == 0.0:
            return 0.0
        if speed == 0.0:
            raise ValueError("cannot execute a positive workload at speed 0")
        return cycles / speed

    def critical_speed(self, *, tol: float = 1e-12) -> float:
        """The speed minimising energy per cycle, within the speed range.

        For dormant-enable processors this is the ``s*`` of the companion
        text's Figure 2: below ``s*``, slowing down *wastes* energy because
        the static term accrues for longer than the dynamic term shrinks.
        The default implementation runs a golden-section search on the
        (unimodal, since ``P`` is convex) function ``P(s)/s``; analytic
        subclasses override it.
        """
        lo = self._s_min if self._s_min > 0 else 1e-9
        hi = self._s_max if math.isfinite(self._s_max) else max(1.0, lo) * 1e6
        return _golden_section(self.energy_per_cycle, lo, hi, tol=tol)

    def clamp_speed(self, speed: float) -> float:
        """Clamp *speed* into the available range ``[s_min, s_max]``."""
        require_nonnegative("speed", speed)
        return min(max(speed, self._s_min), self._s_max)

    # ------------------------------------------------------------------ #
    # Helpers                                                            #
    # ------------------------------------------------------------------ #

    def _check_speed(self, speed: float) -> None:
        require_nonnegative("speed", speed)
        if speed != 0.0 and not (
            self._s_min - 1e-12 <= speed <= self._s_max * (1 + 1e-12)
        ):
            raise ValueError(
                f"speed {speed!r} outside the available range "
                f"[{self._s_min}, {self._s_max}]"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(s_min={self._s_min}, s_max={self._s_max}, "
            f"static_power={self._static_power})"
        )


def _golden_section(fn, lo: float, hi: float, *, tol: float = 1e-12) -> float:
    """Minimise the unimodal *fn* over [lo, hi] by golden-section search."""
    if lo > hi:
        raise ValueError(f"empty search interval [{lo}, {hi}]")
    a, b = lo, hi
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = fn(c), fn(d)
    # Converge on relative width; 200 iterations bounds worst-case cost.
    for _ in range(200):
        if (b - a) <= tol * max(1.0, abs(a) + abs(b)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = fn(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = fn(d)
    return (a + b) / 2.0
