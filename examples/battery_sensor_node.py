"""Scenario: a battery-powered sensor node with leakage and sleep states.

A periodic sensing/communication workload runs on a leaky DVS MCU with a
dormant mode.  Admitting every optional task drains the battery; the
leakage-aware rejection policy keeps the high-value tasks, clocks at the
critical speed, and procrastinates wake-ups to batch work into fewer,
longer sleep episodes.

The script:

1. builds the periodic task set (mandatory sampling + optional filters),
2. solves the rejection problem under the leakage-aware energy model,
3. simulates one hyper-period with EDF + dormant mode + procrastination,
4. reports energy per hyper-period and a battery-lifetime estimate.

Run:  python examples/battery_sensor_node.py
"""

from repro.core.rejection import (
    accepted_periodic_tasks,
    edf_speed,
    exhaustive,
    leakage_aware_energy,
    periodic_problem,
)
from repro.power import DormantMode, PolynomialPowerModel
from repro.sched import simulate_edf
from repro.tasks import PeriodicTask, PeriodicTaskSet

BATTERY_J = 2.0 * 3600.0  # a small 2 Wh pack, in joules


def workload() -> PeriodicTaskSet:
    """Sampling is precious; post-processing is progressively optional."""
    return PeriodicTaskSet(
        [
            PeriodicTask(name="adc_sample", period=10.0, wcec=0.8, penalty=500.0),
            PeriodicTask(name="radio_beacon", period=50.0, wcec=5.0, penalty=400.0),
            PeriodicTask(name="kalman_filter", period=10.0, wcec=1.2, penalty=6.0),
            PeriodicTask(name="fft_features", period=25.0, wcec=6.0, penalty=1.5),
            PeriodicTask(name="anomaly_model", period=50.0, wcec=14.0, penalty=0.8),
            PeriodicTask(name="debug_stats", period=100.0, wcec=20.0, penalty=0.1),
        ]
    )


def main() -> None:
    # A leaky MCU: a third of peak power is static.  Waking from the
    # dormant mode is expensive (0.5 J -> 10 s break-even), so short idle
    # gaps cannot be slept away individually — procrastination batches
    # them past the break-even point.
    mcu = PolynomialPowerModel(beta0=0.05, beta1=0.10, alpha=3.0, s_max=1.0)
    dormant = DormantMode(t_sw=0.5, e_sw=0.5)
    tasks = workload()
    horizon = float(tasks.hyper_period)
    print(f"hyper-period L = {horizon:.0f} s, "
          f"U = {tasks.total_utilization:.3f}, "
          f"critical speed s* = {mcu.critical_speed():.3f}\n")

    problem = periodic_problem(
        tasks, leakage_aware_energy(mcu, dormant=dormant)
    )
    solution = exhaustive(problem)
    accepted = accepted_periodic_tasks(solution, tasks)
    rejected = sorted(
        t.name for t in tasks if t.name not in {a.name for a in accepted}
    )
    print(f"accepted: {[t.name for t in accepted]}")
    print(f"rejected: {rejected}")
    print(f"analytic cost = {solution.cost:.3f} "
          f"(energy {solution.energy:.3f} J + penalty {solution.penalty:.3f})\n")

    speed = edf_speed(accepted, mcu)
    for procrastinate, label in ((False, "eager wake-ups"), (True, "procrastinated")):
        result = simulate_edf(
            accepted,
            mcu,
            speed=speed,
            dormant=dormant,
            procrastinate=procrastinate,
            horizon=horizon,
        )
        assert not result.missed, "leakage-aware schedule missed a deadline!"
        lifetime_h = BATTERY_J / (result.total_energy / horizon) / 3600.0
        print(
            f"{label:<16} energy/L = {result.total_energy:7.3f} J, "
            f"sleep episodes = {result.sleep_episodes:3d}, "
            f"sleep time = {result.sleep_time:6.1f} s, "
            f"battery ~ {lifetime_h:6.1f} h"
        )


if __name__ == "__main__":
    main()
