"""Scenario: admission control on a 4-core DVS SoC.

A burst of frame-based jobs lands on a homogeneous 4-core SoC; the total
demand exceeds 4× a core's capacity, so the runtime must jointly decide
*which jobs to admit* and *how to partition them* across cores (each core
then runs EDF at its own optimal speed).  This is the multiprocessor
variant of the rejection problem.

The script compares arrival-order admission (RAND), LTF with rejection,
and the global marginal-greedy, against the Jensen-pooled fractional
lower bound — the same comparison as reconstructed Fig R7.

Run:  python examples/multicore_soc.py
"""

import numpy as np

from repro.core.rejection import (
    MultiprocRejectionProblem,
    global_greedy_reject,
    ltf_reject,
    pooled_lower_bound,
    rand_reject,
)
from repro.energy import ContinuousEnergyFunction
from repro.power import xscale_power_model
from repro.tasks import frame_instance

CORES = 4


def main() -> None:
    rng = np.random.default_rng(42)
    core = xscale_power_model()
    energy_fn = ContinuousEnergyFunction(core, deadline=1.0)

    # 14 jobs, total demand 1.3x the whole SoC.
    jobs = frame_instance(
        rng,
        n_tasks=14,
        load=1.3 * CORES,
        penalty_model="energy",
        penalty_scale=2.5,
    )
    problem = MultiprocRejectionProblem(tasks=jobs, energy_fn=energy_fn, m=CORES)
    bound = pooled_lower_bound(problem)
    print(
        f"{len(jobs)} jobs, demand {jobs.total_cycles:.2f} on "
        f"{CORES} cores (capacity {problem.capacity * CORES:.2f}); "
        f"pooled lower bound = {bound:.4f}\n"
    )

    print(f"{'policy':<16} {'cost':>8} {'vs bound':>9} {'admitted':>9} "
          f"{'core loads':<32}")
    for name, solver in (
        ("arrival-order", lambda p: rand_reject(p, np.random.default_rng(1))),
        ("ltf+reject", ltf_reject),
        ("global-greedy", global_greedy_reject),
    ):
        sol = solver(problem)
        sizes = [t.cycles for t in jobs]
        loads = ", ".join(
            f"{w:.2f}" for w in sol.partition.loads(sizes)
        )
        print(
            f"{name:<16} {sol.cost:>8.4f} {sol.cost / bound:>9.3f} "
            f"{sol.acceptance_ratio:>8.0%} [{loads}]"
        )

    print("\nper-core speed plans of the best policy:")
    best = global_greedy_reject(problem)
    sizes = [t.cycles for t in jobs]
    for j, load in enumerate(best.partition.loads(sizes)):
        plan = energy_fn.plan(load)
        running = [f"s={seg.speed:.2f}×{seg.duration:.2f}"
                   for seg in plan.segments if seg.speed > 0]
        print(f"  core {j}: load {load:.2f} -> {' + '.join(running) or 'idle'}")


if __name__ == "__main__":
    main()
