"""Scenario: talking to the solve service from a plain HTTP client.

Spawns ``repro serve`` as a subprocess (ephemeral port, fixed capacity
so the rejection demo is deterministic), then walks the whole request
surface with nothing but ``urllib``:

* a synchronous solve (full solution in the response),
* the identical resubmission — answered from the content cache,
* an async solve: 202 + ticket, polled via ``GET /result/<id>``,
* a request too big for the configured capacity — a principled 429,
* the ``/metrics`` admission/cache bookkeeping at the end.

Run:  python examples/solve_service_client.py
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.core.rejection import RejectionProblem
from repro.energy import ContinuousEnergyFunction
from repro.io import instance_to_dict
from repro.power import xscale_power_model
from repro.tasks import frame_instance


def http(method: str, url: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON exchange; returns (status, payload) without raising."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data, {"Content-Type": "application/json"}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:  # 4xx/5xx still carry JSON
        return exc.code, json.load(exc)


def start_server() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",              # ephemeral: the banner names it
            "--workers", "1",
            "--capacity", "20000",      # small on purpose (rejection demo)
            "--rate", "1e9",            # skip calibration for a fast start
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline().strip()  # repro serve: listening on ...
    print(banner)
    url = banner.split("listening on ", 1)[1].split()[0]
    return proc, url


def main() -> None:
    rng = np.random.default_rng(7)
    problem = RejectionProblem(
        tasks=frame_instance(rng, n_tasks=10, load=1.6),
        energy_fn=ContinuousEnergyFunction(xscale_power_model(), deadline=1.0),
    )
    instance = instance_to_dict(problem)

    proc, url = start_server()
    try:
        print("\n-- synchronous solve ------------------------------------")
        body = {"instance": instance, "algorithm": "fptas", "eps": 0.1}
        status, first = http("POST", f"{url}/solve", body)
        solution = first["solution"]
        print(f"HTTP {status}  cache={first['cache']}  "
              f"cost={solution['cost']:.4f}  "
              f"rejected={', '.join(solution['rejected']) or '-'}")

        print("\n-- identical resubmission -------------------------------")
        status, again = http("POST", f"{url}/solve", body)
        print(f"HTTP {status}  cache={again['cache']}  "
              f"(same solution: {again['solution'] == solution})")

        print("\n-- async mode: ticket + poll ----------------------------")
        status, ticket = http(
            "POST", f"{url}/solve",
            {"instance": instance, "algorithm": "greedy_marginal",
             "mode": "async"},
        )
        print(f"HTTP {status}  ticket={ticket['id']}")
        while True:
            status, result = http("GET", f"{url}/result/{ticket['id']}")
            if status != 202:
                break
            time.sleep(0.02)
        print(f"HTTP {status}  status={result['status']}  "
              f"algorithm={result['solution']['algorithm']}")

        print("\n-- a request the capacity cannot hold -------------------")
        # fptas at eps=0.001 is ~1M work units against 20k of capacity:
        # the admission controller answers 429 instead of queueing it.
        status, rejected = http(
            "POST", f"{url}/solve",
            {"instance": instance, "algorithm": "fptas", "eps": 0.001},
        )
        print(f"HTTP {status}  status={rejected['status']}  "
              f"reason={rejected['reason']}")

        print("\n-- /metrics bookkeeping ---------------------------------")
        # bare /metrics is Prometheus text now; the JSON document (with
        # the runtime SLO/time-series section) lives behind ?format=json
        _, metrics = http("GET", f"{url}/metrics?format=json")
        admission = metrics["admission"]
        cache = metrics["cache"]
        print(f"admitted={admission['admitted']}  "
              f"rejected={admission['rejected']}  "
              f"cache hits={cache['hits']} misses={cache['misses']}")
        counters = metrics["counters"]
        accounted = sum(
            counters.get(f"service.solve.{key}", 0)
            for key in ("cached", "admitted", "rejected",
                        "invalid", "unavailable")
        )
        print(f"solve.total={counters['service.solve.total']:.0f} "
              f"== accounted={accounted:.0f}")
    finally:
        proc.send_signal(signal.SIGTERM)  # drains in-flight requests
        proc.wait(timeout=60)
    print("\nserver drained and exited cleanly")


if __name__ == "__main__":
    main()
