"""Scenario: design-space exploration for an admission policy review.

A systems architect is reviewing which tasks a controller should admit.
Beyond the single optimal answer, they want the *whole trade-off curve*
(how cost moves as more work is accepted) and, per task, the exact
penalty level at which the optimal decision would flip — ammunition for
negotiating requirements with stakeholders.

Demonstrates `pareto_frontier`, `acceptance_price`, `rejection_price`,
and the JSON export for sharing the analysis.

Run:  python examples/design_space_exploration.py
"""

import json

import numpy as np

from repro import RejectionProblem
from repro.core.rejection import (
    acceptance_price,
    pareto_exact,
    pareto_frontier,
    rejection_price,
)
from repro.energy import ContinuousEnergyFunction
from repro.io import solution_to_dict
from repro.power import xscale_power_model
from repro.tasks import frame_instance


def main() -> None:
    rng = np.random.default_rng(11)
    tasks = frame_instance(rng, n_tasks=10, load=1.5, penalty_scale=1.5)
    problem = RejectionProblem(
        tasks=tasks,
        energy_fn=ContinuousEnergyFunction(xscale_power_model(), deadline=1.0),
    )
    optimum = pareto_exact(problem)

    # --- the trade-off curve ------------------------------------------
    print("acceptance / cost trade-off (non-dominated operating points):\n")
    print(f"{'workload':>9} {'penalty':>9} {'total cost':>11}  ")
    frontier = pareto_frontier(problem)
    scale = max(cost for _, _, cost in frontier)
    best_index = min(range(len(frontier)), key=lambda k: frontier[k][2])
    if len(frontier) > 24:  # subsample for readability, keep the optimum
        step = len(frontier) // 20
        keep = sorted({*range(0, len(frontier), step), best_index,
                       len(frontier) - 1})
        frontier = [frontier[k] for k in keep]
    for workload, penalty, cost in frontier:
        bar = "#" * int(round(30 * cost / scale))
        marker = "  <-- optimal" if abs(cost - optimum.cost) < 1e-12 else ""
        print(f"{workload:>9.3f} {penalty:>9.3f} {cost:>11.4f}  {bar}{marker}")

    # --- decision robustness ------------------------------------------
    print("\nper-task decision flip points:\n")
    print(f"{'task':<6} {'decision':<9} {'penalty':>8} {'flips at':>9} "
          f"{'margin':>8}")
    for i, task in enumerate(problem.tasks):
        if i in optimum.accepted:
            flip = rejection_price(problem, i)
            margin = task.penalty - flip
            decision = "accept"
        else:
            flip = acceptance_price(problem, i)
            margin = flip - task.penalty
            decision = "reject"
        print(
            f"{task.name:<6} {decision:<9} {task.penalty:>8.4f} "
            f"{flip:>9.4f} {margin:>8.4f}"
        )

    # --- share the analysis --------------------------------------------
    dump = solution_to_dict(optimum)
    print(
        f"\nJSON export ready ({len(json.dumps(dump))} bytes): "
        f"algorithm={dump['algorithm']}, cost={dump['cost']:.4f}, "
        f"accepted={dump['accepted']}"
    )


if __name__ == "__main__":
    main()
