"""Quickstart: solve one task-rejection instance end to end.

A DVS processor (normalised Intel XScale, ``P(s) = 0.08 + 1.52 s³`` W,
top speed 1.0) faces six frame-based tasks that together need 1.4× its
capacity before the common deadline.  Some tasks must be rejected; each
rejection has a penalty.  We solve the instance with the whole algorithm
roster and show the winner's schedule.

Run:  python examples/quickstart.py
"""

from repro import RejectionProblem
from repro.core.rejection import (
    accept_all_repair,
    exhaustive,
    fptas,
    fractional_lower_bound,
    greedy_marginal,
    lp_rounding,
)
from repro.energy import ContinuousEnergyFunction
from repro.power import xscale_power_model
from repro.tasks import FrameTask, FrameTaskSet


def main() -> None:
    # --- the platform -------------------------------------------------
    processor = xscale_power_model()  # s_max = 1.0
    deadline = 1.0  # one frame
    energy_fn = ContinuousEnergyFunction(processor, deadline)

    # --- the workload: Σ cycles = 1.4 > capacity 1.0 -------------------
    tasks = FrameTaskSet(
        [
            FrameTask(name="sensor_fusion", cycles=0.35, penalty=2.00),
            FrameTask(name="control_loop", cycles=0.25, penalty=3.00),
            FrameTask(name="telemetry", cycles=0.20, penalty=0.15),
            FrameTask(name="logging", cycles=0.25, penalty=0.05),
            FrameTask(name="diagnostics", cycles=0.15, penalty=0.10),
            FrameTask(name="ui_refresh", cycles=0.20, penalty=0.40),
        ]
    )
    problem = RejectionProblem(tasks=tasks, energy_fn=energy_fn)
    print(f"load = {problem.overload:.2f}x capacity "
          f"(rejection is mandatory)\n")

    # --- solve with the full roster ------------------------------------
    solutions = [
        exhaustive(problem),
        fptas(problem, eps=0.1),
        greedy_marginal(problem),
        lp_rounding(problem),
        accept_all_repair(problem),
    ]
    bound = fractional_lower_bound(problem)

    print(f"{'algorithm':<18} {'cost':>8} {'energy':>8} {'penalty':>8} "
          f"{'rejected':<30}")
    for sol in solutions:
        rejected = ", ".join(t.name for t in sol.rejected_tasks) or "-"
        print(
            f"{sol.algorithm:<18} {sol.cost:>8.4f} {sol.energy:>8.4f} "
            f"{sol.penalty:>8.4f} {rejected:<30}"
        )
    print(f"{'fractional bound':<18} {bound:>8.4f}\n")

    # --- the winning schedule ------------------------------------------
    best = solutions[0]
    plan = best.speed_plan()
    print("optimal speed plan:")
    for seg in plan.segments:
        state = "sleep" if seg.is_sleep else (
            "idle" if seg.speed == 0 else f"run @ s={seg.speed:.3f}"
        )
        print(f"  [{seg.start:5.3f}, {seg.end:5.3f}]  {state}")
    print(f"plan energy = {plan.energy:.4f} J over deadline {deadline}\n")

    # --- how robust is the decision? ------------------------------------
    from repro.core.rejection import acceptance_price, rejection_price

    print("sensitivity (exact decision flip points):")
    for i in sorted(best.rejected):
        task = tasks[i]
        price = acceptance_price(problem, i)
        print(
            f"  {task.name:<12} rejected at rho={task.penalty:.3f}; "
            f"would be accepted from rho >= {price:.3f}"
        )
    for i in sorted(best.accepted):
        task = tasks[i]
        price = rejection_price(problem, i)
        print(
            f"  {task.name:<12} accepted at rho={task.penalty:.3f}; "
            f"would be dropped below rho <= {price:.3f}"
        )


if __name__ == "__main__":
    main()
