"""Scenario: an overloaded soft-real-time video decoder.

Each display frame (33 ms budget) decodes a batch of macroblock groups;
enhancement layers can be *dropped* at a quality penalty while the base
layer is near-mandatory (huge penalty).  At high bitrates the batch
exceeds the DVS processor's capacity, so the decoder must pick which
layers to drop and how fast to clock — exactly the REJECT-MIN problem.

The script sweeps the bitrate (load), compares the naive policy
("decode everything, drop the biggest layer on overflow") against the
energy-aware FPTAS, and verifies the chosen schedule end to end on the
frame executor.

Run:  python examples/overloaded_video_decoder.py
"""

import numpy as np

from repro import RejectionProblem
from repro.core.rejection import accept_all_repair, fptas
from repro.energy import ContinuousEnergyFunction
from repro.power import xscale_power_model
from repro.sched import execute_frame_plan
from repro.tasks import FrameTask, FrameTaskSet

FRAME_BUDGET = 33e-3  # seconds per display frame
CYCLE_SCALE = 1.0e0  # speeds normalised: 1.0 = full clock


def decoder_batch(rng: np.random.Generator, load: float) -> FrameTaskSet:
    """One frame's decode batch at a given load (Σ cycles / capacity)."""
    capacity = FRAME_BUDGET * 1.0  # s_max = 1
    base = 0.45 * capacity * load / 1.4
    layers = [
        FrameTask(name="base_layer", cycles=base, penalty=50.0),
        FrameTask(
            name="enh_layer_1",
            cycles=0.30 * capacity * load / 1.4,
            penalty=0.030 * float(rng.uniform(0.8, 1.2)),
        ),
        FrameTask(
            name="enh_layer_2",
            cycles=0.25 * capacity * load / 1.4,
            penalty=0.012 * float(rng.uniform(0.8, 1.2)),
        ),
        FrameTask(
            name="enh_layer_3",
            cycles=0.20 * capacity * load / 1.4,
            penalty=0.005 * float(rng.uniform(0.8, 1.2)),
        ),
        FrameTask(
            name="osd_overlay",
            cycles=0.20 * capacity * load / 1.4,
            penalty=0.020 * float(rng.uniform(0.8, 1.2)),
        ),
    ]
    return FrameTaskSet(layers)


def main() -> None:
    rng = np.random.default_rng(2007)
    processor = xscale_power_model()
    energy_fn = ContinuousEnergyFunction(processor, FRAME_BUDGET)

    print(f"{'load':>5} {'policy':<12} {'cost':>9} {'energy(mJ)':>10} "
          f"{'dropped':<28}")
    for load in (0.8, 1.1, 1.4, 1.8):
        batch = decoder_batch(rng, load)
        problem = RejectionProblem(tasks=batch, energy_fn=energy_fn)
        for name, solver in (
            ("naive", accept_all_repair),
            ("energy-aware", lambda p: fptas(p, eps=0.05)),
        ):
            sol = solver(problem)
            dropped = ", ".join(t.name for t in sol.rejected_tasks) or "-"
            print(
                f"{load:>5.2f} {name:<12} {sol.cost:>9.5f} "
                f"{sol.energy * 1e3:>10.4f} {dropped:<28}"
            )

            # End-to-end check: the plan really decodes the accepted
            # layers inside the frame budget.
            execution = execute_frame_plan(
                sol.accepted_tasks, sol.speed_plan(), processor
            )
            assert execution.all_met, "schedule blew the frame budget!"
        print()

    print("every schedule verified against the frame executor "
          "(all layers decoded in budget)")


if __name__ == "__main__":
    main()
