"""Scenario: live admission control at a base-station task queue.

Requests stream into a DVS baseband processor; each must be admitted or
refused on arrival (callers are answered immediately), and the frame's
energy is paid at the end.  We compare admission policies over many
random arrival orders, then zoom into one frame: the chosen schedule is
drawn as an ASCII speed profile next to the offline-optimal one.

Run:  python examples/online_admission.py
"""

import numpy as np

from repro import RejectionProblem
from repro.core.rejection import (
    AcceptIfFeasible,
    ThresholdPolicy,
    pareto_exact,
    run_online,
)
from repro.energy import ContinuousEnergyFunction
from repro.power import xscale_power_model
from repro.sched import render_speed_plan
from repro.tasks import frame_instance


def main() -> None:
    processor = xscale_power_model()
    energy_fn = ContinuousEnergyFunction(processor, deadline=1.0)
    rng = np.random.default_rng(7)

    policies = [
        ThresholdPolicy(0.5),
        ThresholdPolicy(1.0),
        ThresholdPolicy(2.0),
        AcceptIfFeasible(),
    ]

    print("mean cost / offline optimal over 200 random frames "
          "(load 1.6, shuffled arrivals):\n")
    totals = {p.name: 0.0 for p in policies}
    trials = 200
    for _ in range(trials):
        tasks = frame_instance(rng, n_tasks=12, load=1.6)
        problem = RejectionProblem(tasks=tasks, energy_fn=energy_fn)
        offline = pareto_exact(problem).cost
        arrival = list(rng.permutation(problem.n))
        for policy in policies:
            sol = run_online(problem, policy, order=arrival)
            totals[policy.name] += sol.cost / offline
    for name, total in totals.items():
        print(f"  {name:<22} {total / trials:6.4f}")

    # One concrete frame, side by side.
    tasks = frame_instance(rng, n_tasks=10, load=1.6)
    problem = RejectionProblem(tasks=tasks, energy_fn=energy_fn)
    offline = pareto_exact(problem)
    online = run_online(problem, ThresholdPolicy(1.0), rng=rng)
    print(f"\none frame: offline cost {offline.cost:.4f} "
          f"(accepts {sorted(offline.accepted)}), "
          f"online cost {online.cost:.4f} "
          f"(accepts {sorted(online.accepted)})")
    print("\noffline speed profile:")
    print(render_speed_plan(offline.speed_plan(), width=60, height=5))
    print("\nonline speed profile:")
    print(render_speed_plan(online.speed_plan(), width=60, height=5))


if __name__ == "__main__":
    main()
